//! Weighted grid views.
//!
//! The DP of §IV-D is O(n⁵) in the side length of the sheet's bounding box.
//! The paper's *weighted representation* (§IV-D, Figure 10b) collapses
//! adjacent rows with identical filled-cell structure into a single weighted
//! row (and likewise for columns) — cuts between identical neighbours can
//! never help, so optimality is preserved (Theorem 5). [`GridView`] performs
//! this collapse and exposes O(1) weighted rectangle-count queries in *band*
//! coordinates, which is what the optimizers work in.

use std::collections::BTreeMap;

use dataspread_grid::{CellAddr, Rect, SparseSheet};

/// A (possibly weighted) view of a sheet's occupancy.
///
/// Band `i` of the row axis covers absolute rows
/// `row_start[i] .. row_start[i+1]`; within a band every row has the same
/// filled-column pattern, so a band×band cell is uniformly filled or empty.
#[derive(Debug, Clone)]
pub struct GridView {
    /// Number of row bands.
    h: usize,
    /// Number of column bands.
    w: usize,
    /// Absolute start row of each band, plus a sentinel end (len `h+1`).
    row_start: Vec<u32>,
    /// Absolute start column of each band, plus a sentinel end (len `w+1`).
    col_start: Vec<u32>,
    /// Band-level occupancy, `h*w`, row-major.
    filled: Vec<bool>,
    /// `(h+1)*(w+1)` prefix sums of *weighted* filled counts
    /// (`row_weight × col_weight` per filled band cell).
    wprefix: Vec<u64>,
    bbox: Option<Rect>,
}

impl GridView {
    /// Weighted view: adjacent structurally identical rows/columns collapse.
    pub fn from_sheet(sheet: &SparseSheet) -> Self {
        Self::build(sheet, &[], &[], true, None)
    }

    /// Unweighted view: every row/column is its own band (for tests and for
    /// the Theorem 5 equivalence check).
    pub fn from_sheet_unweighted(sheet: &SparseSheet) -> Self {
        Self::build(sheet, &[], &[], false, None)
    }

    /// Weighted view whose bands never exceed `max_rows × max_cols`
    /// original rows/columns. Required when the cost model enforces
    /// relation-width caps (Theorem 8): collapsing identical columns past
    /// the cap would make the mandatory split cuts unreachable — the one
    /// case where Theorem 5's "collapse freely" doesn't carry over.
    pub fn from_sheet_capped(sheet: &SparseSheet, max_rows: u32, max_cols: u32) -> Self {
        Self::build(sheet, &[], &[], true, Some((max_rows, max_cols)))
    }

    /// Weighted view with forced band boundaries (absolute coordinates that
    /// must *start* a new band). Incremental maintenance uses this so the
    /// previous decomposition's rectangles stay addressable.
    pub fn with_boundaries(sheet: &SparseSheet, row_bounds: &[u32], col_bounds: &[u32]) -> Self {
        Self::build(sheet, row_bounds, col_bounds, true, None)
    }

    fn build(
        sheet: &SparseSheet,
        row_bounds: &[u32],
        col_bounds: &[u32],
        collapse: bool,
        band_cap: Option<(u32, u32)>,
    ) -> Self {
        let Some(bbox) = sheet.bounding_box() else {
            return GridView {
                h: 0,
                w: 0,
                row_start: vec![0],
                col_start: vec![0],
                filled: Vec::new(),
                wprefix: vec![0],
                bbox: None,
            };
        };
        // Per-row sorted column lists.
        let mut rows: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (addr, _) in sheet.iter() {
            rows.entry(addr.row).or_default().push(addr.col);
        }
        // sheet.iter is row-major so each Vec is already sorted.

        use std::collections::HashSet;
        let row_bound_set: HashSet<u32> = row_bounds.iter().copied().collect();
        let col_bound_set: HashSet<u32> = col_bounds.iter().copied().collect();

        // --- Row bands ---
        static EMPTY: Vec<u32> = Vec::new();
        let max_band_rows = band_cap.map(|(r, _)| r.max(1)).unwrap_or(u32::MAX);
        let mut row_start: Vec<u32> = Vec::new();
        // Per-band filled-column pattern (borrowed from `rows`).
        let mut band_pattern: Vec<&Vec<u32>> = Vec::new();
        let mut prev: Option<&Vec<u32>> = None;
        for r in bbox.r1..=bbox.r2 {
            let pat = rows.get(&r).unwrap_or(&EMPTY);
            let cap_hit = row_start.last().is_some_and(|&s| r - s >= max_band_rows);
            let force = row_bound_set.contains(&r) || !collapse || cap_hit;
            if force || prev != Some(pat) {
                row_start.push(r);
                band_pattern.push(pat);
                prev = Some(pat);
            }
        }
        row_start.push(bbox.r2 + 1);
        let h = band_pattern.len();

        // --- Column bands ---
        // Signature of column c = sorted list of row-band indices where it
        // is filled.
        let width = (bbox.c2 - bbox.c1 + 1) as usize;
        let mut col_sig: Vec<Vec<u32>> = vec![Vec::new(); width];
        for (b, pat) in band_pattern.iter().enumerate() {
            for &c in pat.iter() {
                col_sig[(c - bbox.c1) as usize].push(b as u32);
            }
        }
        let max_band_cols = band_cap.map(|(_, c)| c.max(1)).unwrap_or(u32::MAX);
        let mut col_start: Vec<u32> = Vec::new();
        let mut col_band_sig: Vec<&Vec<u32>> = Vec::new();
        let mut prev: Option<&Vec<u32>> = None;
        for (i, sig) in col_sig.iter().enumerate() {
            let c = bbox.c1 + i as u32;
            let cap_hit = col_start.last().is_some_and(|&s| c - s >= max_band_cols);
            let force = col_bound_set.contains(&c) || !collapse || cap_hit;
            if force || prev != Some(sig) {
                col_start.push(c);
                col_band_sig.push(sig);
                prev = Some(sig);
            }
        }
        col_start.push(bbox.c2 + 1);
        let w = col_band_sig.len();

        // --- Band occupancy + weighted prefix sums ---
        let mut filled = vec![false; h * w];
        for (cb, sig) in col_band_sig.iter().enumerate() {
            for &b in sig.iter() {
                filled[b as usize * w + cb] = true;
            }
        }
        let mut wprefix = vec![0u64; (h + 1) * (w + 1)];
        let pw = w + 1;
        for rb in 0..h {
            let rw = (row_start[rb + 1] - row_start[rb]) as u64;
            let mut row_sum = 0u64;
            for cb in 0..w {
                let cw = (col_start[cb + 1] - col_start[cb]) as u64;
                if filled[rb * w + cb] {
                    row_sum += rw * cw;
                }
                wprefix[(rb + 1) * pw + (cb + 1)] = wprefix[rb * pw + (cb + 1)] + row_sum;
            }
        }

        GridView {
            h,
            w,
            row_start,
            col_start,
            filled,
            wprefix,
            bbox: Some(bbox),
        }
    }

    /// Number of row bands.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Number of column bands.
    pub fn w(&self) -> usize {
        self.w
    }

    pub fn is_empty(&self) -> bool {
        self.h == 0 || self.w == 0
    }

    pub fn bbox(&self) -> Option<Rect> {
        self.bbox
    }

    /// Total (original) filled cells.
    pub fn total_filled(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.wprefix[self.h * (self.w + 1) + self.w]
        }
    }

    /// Number of original rows covered by row bands `r1b..=r2b`.
    pub fn rows_weight(&self, r1b: usize, r2b: usize) -> u64 {
        (self.row_start[r2b + 1] - self.row_start[r1b]) as u64
    }

    /// Number of original columns covered by column bands `c1b..=c2b`.
    pub fn cols_weight(&self, c1b: usize, c2b: usize) -> u64 {
        (self.col_start[c2b + 1] - self.col_start[c1b]) as u64
    }

    /// Original filled-cell count of the band rectangle, O(1).
    pub fn filled_weighted(&self, r1b: usize, c1b: usize, r2b: usize, c2b: usize) -> u64 {
        let pw = self.w + 1;
        self.wprefix[(r2b + 1) * pw + (c2b + 1)] + self.wprefix[r1b * pw + c1b]
            - self.wprefix[r1b * pw + (c2b + 1)]
            - self.wprefix[(r2b + 1) * pw + c1b]
    }

    /// Whether band cell `(rb, cb)` is filled.
    pub fn band_filled(&self, rb: usize, cb: usize) -> bool {
        self.filled[rb * self.w + cb]
    }

    /// Absolute rectangle covered by the band rectangle.
    pub fn band_rect(&self, r1b: usize, c1b: usize, r2b: usize, c2b: usize) -> Rect {
        Rect::new(
            self.row_start[r1b],
            self.col_start[c1b],
            self.row_start[r2b + 1] - 1,
            self.col_start[c2b + 1] - 1,
        )
    }

    /// Band index containing absolute row `r` (must lie in the bbox).
    fn row_band(&self, r: u32) -> usize {
        self.row_start.partition_point(|&s| s <= r) - 1
    }

    fn col_band(&self, c: u32) -> usize {
        self.col_start.partition_point(|&s| s <= c) - 1
    }

    /// Exact filled count of an arbitrary absolute rectangle. Bands cut by
    /// the rectangle edge contribute proportionally (rows within a band are
    /// identical, so the count is exact, not an estimate).
    pub fn filled_in(&self, rect: &Rect) -> u64 {
        let Some(bbox) = self.bbox else { return 0 };
        let Some(clip) = rect.intersection(&bbox) else {
            return 0;
        };
        let rb1 = self.row_band(clip.r1);
        let rb2 = self.row_band(clip.r2);
        let cb1 = self.col_band(clip.c1);
        let cb2 = self.col_band(clip.c2);
        let mut total = 0u64;
        for rb in rb1..=rb2 {
            let band_r1 = self.row_start[rb].max(clip.r1);
            let band_r2 = (self.row_start[rb + 1] - 1).min(clip.r2);
            let rows = (band_r2 - band_r1 + 1) as u64;
            for cb in cb1..=cb2 {
                if !self.filled[rb * self.w + cb] {
                    continue;
                }
                let band_c1 = self.col_start[cb].max(clip.c1);
                let band_c2 = (self.col_start[cb + 1] - 1).min(clip.c2);
                total += rows * (band_c2 - band_c1 + 1) as u64;
            }
        }
        total
    }

    /// Whether an absolute cell is filled.
    pub fn is_filled(&self, addr: CellAddr) -> bool {
        match self.bbox {
            Some(b) if b.contains(addr) => {
                self.filled[self.row_band(addr.row) * self.w + self.col_band(addr.col)]
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sheet_from(cells: &[(u32, u32)]) -> SparseSheet {
        let mut s = SparseSheet::new();
        for &(r, c) in cells {
            s.set_value(CellAddr::new(r, c), 1i64);
        }
        s
    }

    /// Figure 10(a)-style layout: dense bars that should collapse.
    fn banded_sheet() -> SparseSheet {
        let mut cells = Vec::new();
        // Rows 0-1: cols 0..8 filled (two identical rows).
        for r in 0..2 {
            for c in 0..8 {
                cells.push((r, c));
            }
        }
        // Rows 5-6: cols 0..8 filled again.
        for r in 5..7 {
            for c in 0..8 {
                cells.push((r, c));
            }
        }
        sheet_from(&cells)
    }

    #[test]
    fn empty_sheet_view() {
        let v = GridView::from_sheet(&SparseSheet::new());
        assert!(v.is_empty());
        assert_eq!(v.total_filled(), 0);
        assert_eq!(v.filled_in(&Rect::new(0, 0, 10, 10)), 0);
    }

    #[test]
    fn collapse_reduces_band_counts() {
        let s = banded_sheet();
        let v = GridView::from_sheet(&s);
        // Row bands: [0-1 full], [2-4 empty], [5-6 full] = 3.
        assert_eq!(v.h(), 3);
        // Col bands: all 8 columns identical = 1.
        assert_eq!(v.w(), 1);
        let u = GridView::from_sheet_unweighted(&s);
        assert_eq!(u.h(), 7);
        assert_eq!(u.w(), 8);
        assert_eq!(v.total_filled(), u.total_filled());
        assert_eq!(v.total_filled(), 32);
    }

    #[test]
    fn weights_and_band_rects() {
        let v = GridView::from_sheet(&banded_sheet());
        assert_eq!(v.rows_weight(0, 0), 2);
        assert_eq!(v.rows_weight(1, 1), 3);
        assert_eq!(v.rows_weight(0, 2), 7);
        assert_eq!(v.cols_weight(0, 0), 8);
        assert_eq!(v.band_rect(0, 0, 0, 0), Rect::new(0, 0, 1, 7));
        assert_eq!(v.band_rect(0, 0, 2, 0), Rect::new(0, 0, 6, 7));
        assert_eq!(v.filled_weighted(0, 0, 0, 0), 16);
        assert_eq!(v.filled_weighted(0, 0, 2, 0), 32);
        assert!(v.band_filled(0, 0));
        assert!(!v.band_filled(1, 0));
    }

    #[test]
    fn filled_in_exact_on_band_cuts() {
        let s = banded_sheet();
        let v = GridView::from_sheet(&s);
        // A rect slicing through bands: row 1 only, cols 2..5.
        assert_eq!(v.filled_in(&Rect::new(1, 2, 1, 5)), 4);
        // Partial band rows 1..5 (1 full row + 3 empty rows) x cols 0..7.
        assert_eq!(v.filled_in(&Rect::new(1, 0, 4, 7)), 8);
        // Compare against brute force for many rects.
        for r1 in 0..7u32 {
            for r2 in r1..7 {
                for c1 in (0..8u32).step_by(3) {
                    for c2 in c1..8 {
                        let rect = Rect::new(r1, c1, r2, c2);
                        let brute = s.iter_rect(rect).count() as u64;
                        assert_eq!(v.filled_in(&rect), brute, "{rect}");
                    }
                }
            }
        }
    }

    #[test]
    fn forced_boundaries_split_bands() {
        let s = banded_sheet();
        let v = GridView::with_boundaries(&s, &[1], &[4]);
        // Row band [0,1] forced apart at 1 → bands {0},{1},{2-4},{5-6}.
        assert_eq!(v.h(), 4);
        // Col band forced apart at 4 → {0-3},{4-7}.
        assert_eq!(v.w(), 2);
        assert_eq!(v.total_filled(), 32);
    }

    #[test]
    fn band_cap_splits_uniform_runs() {
        // 1x100 dense row would collapse to one column band; a 30-col cap
        // must split it so width-capped cuts stay reachable (Theorem 8).
        let mut s = SparseSheet::new();
        for c in 0..100u32 {
            s.set_value(CellAddr::new(0, c), 1i64);
        }
        let v = GridView::from_sheet_capped(&s, u32::MAX, 30);
        assert_eq!(v.w(), 4, "100 cols at cap 30 → 30+30+30+10");
        assert_eq!(v.cols_weight(0, 0), 30);
        assert_eq!(v.cols_weight(3, 3), 10);
        assert_eq!(v.total_filled(), 100);
        // Row cap likewise.
        let mut tall = SparseSheet::new();
        for r in 0..70u32 {
            tall.set_value(CellAddr::new(r, 0), 1i64);
        }
        let v = GridView::from_sheet_capped(&tall, 32, u32::MAX);
        assert_eq!(v.h(), 3);
        assert_eq!(v.total_filled(), 70);
    }

    #[test]
    fn is_filled_checks_cells() {
        let v = GridView::from_sheet(&banded_sheet());
        assert!(v.is_filled(CellAddr::new(0, 0)));
        assert!(v.is_filled(CellAddr::new(6, 7)));
        assert!(!v.is_filled(CellAddr::new(3, 3)));
        assert!(!v.is_filled(CellAddr::new(100, 0)));
    }
}
