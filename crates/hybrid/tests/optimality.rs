//! Property tests for the hybrid optimizer:
//!
//! * DP never exceeds the cost of any explicitly sampled recursive
//!   decomposition (Theorem 2),
//! * the weighted DP equals the unweighted DP (Theorem 5),
//! * greedy/aggressive-greedy decompositions are recoverable, overlap-free,
//!   and no cheaper than DP,
//! * all decomposition costs respect the OPT lower bound and the Theorem 3
//!   additive slack with Theorem 4's table-count bound.

use proptest::prelude::*;

use dataspread_grid::{CellAddr, SparseSheet};
use dataspread_hybrid::dp::{dp_cost, explicit_tree_cost, optimize_dp};
use dataspread_hybrid::{
    opt_lower_bound, optimize_agg, optimize_greedy, CostModel, GridView, ModelSet, OptimizerOptions,
};

/// Random small sheets: a few dense blocks plus scattered cells in a 16x16
/// window (small enough for the unweighted DP).
fn sheet_strategy() -> impl Strategy<Value = SparseSheet> {
    let block = (0u32..12, 0u32..12, 1u32..6, 1u32..6);
    (
        prop::collection::vec(block, 0..4),
        prop::collection::vec((0u32..16, 0u32..16), 0..10),
    )
        .prop_map(|(blocks, scatter)| {
            let mut s = SparseSheet::new();
            for (r, c, h, w) in blocks {
                for dr in 0..h {
                    for dc in 0..w {
                        s.set_value(CellAddr::new(r + dr, c + dc), 1i64);
                    }
                }
            }
            for (r, c) in scatter {
                s.set_value(CellAddr::new(r, c), 1i64);
            }
            s
        })
}

fn cost_models() -> impl Strategy<Value = CostModel> {
    prop_oneof![Just(CostModel::postgres()), Just(CostModel::ideal())]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dp_beats_random_recursive_decompositions(
        sheet in sheet_strategy(),
        cm in cost_models(),
        seeds in prop::collection::vec(any::<u64>(), 4),
    ) {
        let view = GridView::from_sheet(&sheet);
        let opts = OptimizerOptions::default();
        let Ok(dp) = dp_cost(&view, &cm, &opts) else { return Ok(()); };
        if view.is_empty() {
            prop_assert_eq!(dp, 0.0);
            return Ok(());
        }
        let bands = (0, view.h() - 1, 0, view.w() - 1);
        for seed in seeds {
            let mut state = seed | 1;
            let mut pick = move |n: usize| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as usize) % n
            };
            let sampled = explicit_tree_cost(&view, &cm, &opts, bands, &mut pick);
            prop_assert!(
                dp <= sampled + 1e-6,
                "dp {} beat by sampled recursive decomposition {}", dp, sampled
            );
        }
    }

    #[test]
    fn weighted_equals_unweighted_dp(sheet in sheet_strategy(), cm in cost_models()) {
        let opts = OptimizerOptions::default();
        let w = dp_cost(&GridView::from_sheet(&sheet), &cm, &opts).unwrap();
        let u = dp_cost(&GridView::from_sheet_unweighted(&sheet), &cm, &opts).unwrap();
        prop_assert!((w - u).abs() < 1e-6, "weighted {} != unweighted {}", w, u);
    }

    #[test]
    fn heuristics_are_recoverable_and_bounded_by_dp(
        sheet in sheet_strategy(),
        cm in cost_models(),
    ) {
        let view = GridView::from_sheet(&sheet);
        let opts = OptimizerOptions::default();
        let dp = optimize_dp(&view, &cm, &opts).unwrap();
        prop_assert!(dp.is_recoverable(&sheet));
        prop_assert!(!dp.has_overlaps());
        let dp_c = dp.storage_cost(&view, &cm);
        for d in [optimize_greedy(&view, &cm, &opts), optimize_agg(&view, &cm, &opts)] {
            prop_assert!(d.is_recoverable(&sheet));
            prop_assert!(!d.has_overlaps());
            let c = d.storage_cost(&view, &cm);
            // Note: storage_cost charges the global RCV s1 that the DP
            // objective treats as sunk, so compare with that slack.
            prop_assert!(c + 1e-6 >= dp_c - cm.s1_table, "heuristic {} below dp {}", c, dp_c);
        }
    }

    #[test]
    fn dp_respects_opt_lower_bound(sheet in sheet_strategy(), cm in cost_models()) {
        if sheet.is_empty() {
            return Ok(());
        }
        let view = GridView::from_sheet(&sheet);
        // ROM-only: the OPT lower bound in the paper is stated for
        // Problem 1 (hybrid-ROM).
        let opts = OptimizerOptions {
            models: ModelSet::ROM_ONLY,
            ..OptimizerOptions::default()
        };
        let dp = dp_cost(&view, &cm, &opts).unwrap();
        let lb = opt_lower_bound(&sheet, &cm);
        prop_assert!(dp + 1e-6 >= lb, "dp {} below OPT lower bound {}", dp, lb);
    }
}
