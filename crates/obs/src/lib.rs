//! Observability primitives for the DataSpread stack.
//!
//! This crate is intentionally **dependency-free** (std only) and sits at
//! the very bottom of the workspace dependency DAG so every layer — the
//! WAL, the pager, the recompute scheduler, the workspace service, the
//! TCP server — can record into one shared [`MetricsRegistry`] without
//! import cycles.
//!
//! Three primitive families, all lock-free on the record path:
//!
//! * [`Counter`] — a monotonically increasing `AtomicU64`.
//! * [`Gauge`] — a settable signed value (resident bytes, in-flight
//!   requests, ops-per-fsync).
//! * [`Histogram`] — a fixed-bucket log2-scale latency/size histogram.
//!   [`Histogram::record_ns`] is a handful of relaxed atomic ops; a
//!   [`HistogramSnapshot`] is mergeable and answers p50/p90/p99/max.
//!
//! Plus a bounded [`EventRing`] capturing structured [`Event`] records
//! (timestamp, sheet, op kind, duration, ticket, outcome) for operations
//! over a configurable slow-op threshold and for notable state changes:
//! degraded-mode transitions, WAL segment rotations, checkpoint
//! rollbacks, admission-control `Busy` rejections, client connects and
//! disconnects. When the ring is full the oldest record is dropped and a
//! drop counter advances, so the ring is safe to leave running forever.
//!
//! The registry has a global enable/disable toggle
//! ([`MetricsRegistry::set_enabled`]): handles stay valid either way, and
//! hot paths consult [`MetricsRegistry::enabled`] before paying for
//! `Instant::now()` pairs, which is what the overhead bench compares.
//!
//! Snapshots render to a Prometheus-style text exposition via
//! [`RegistrySnapshot::render_text`] (`name{label="v"} value` lines); the
//! wire codec for shipping snapshots lives in `dataspread-proto`, keeping
//! this crate free of protocol concerns.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{SystemTime, UNIX_EPOCH};

/// Number of log2 buckets in a [`Histogram`]: bucket 0 holds exact zeros,
/// bucket `i` (1..=64) holds values in `[2^(i-1), 2^i - 1]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Milliseconds since the Unix epoch, for event and health timestamps.
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------- counter --

/// A monotonically increasing event counter. `add` is a single relaxed
/// atomic fetch-add; reads are exact-at-some-point, not linearized
/// against other metrics.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by one and return the post-increment value. One atomic
    /// fetch-add — lets a caller use the counter as a sampling sequence
    /// (e.g. "time one op in N") without a second atomic.
    pub fn inc_get(&self) -> u64 {
        self.value.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ------------------------------------------------------------------ gauge --

/// A settable signed instantaneous value (resident bytes, in-flight
/// requests). `add`/`sub` are relaxed atomic ops; `set` overwrites.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A fresh zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (use a negative value to subtract).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

// -------------------------------------------------------------- histogram --

/// A fixed-bucket log2-scale histogram. Bucket 0 counts exact zeros;
/// bucket `i` counts values in `[2^(i-1), 2^i - 1]`. Recording is
/// lock-free: one fetch-add on the bucket, count and sum, plus a
/// fetch-max for the running maximum. Suitable for nanosecond latencies
/// and for sizes (batch ops, wave widths) alike.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket a value lands in: 0 for 0, else `floor(log2(v)) + 1`.
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` — the representative value a
/// percentile query reports for samples inside it.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample (any unit; buckets are log2 of the raw value).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a latency sample in nanoseconds (alias of [`record`]
    /// (Histogram::record), named for the common call site).
    pub fn record_ns(&self, ns: u64) {
        self.record(ns);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy. Buckets, count, sum and max are each read
    /// atomically but not as one transaction; a snapshot taken during
    /// concurrent recording may be off by the in-flight samples, which is
    /// the standard (and harmless) metrics-scrape race.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`], mergeable across shards and
/// queryable for percentiles. The bucket vector always has
/// [`HISTOGRAM_BUCKETS`] entries; the total count is the bucket sum (the
/// wire decoder in `dataspread-proto` rejects snapshots violating that).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
    /// Sum of all recorded values (same unit as the samples).
    pub sum: u64,
    /// Largest value recorded.
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot with the canonical bucket count.
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }

    /// Total samples across all buckets.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Fold another snapshot into this one (bucket-wise addition; max of
    /// maxes). Both sides must use the canonical bucket count.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the upper bound
    /// of the bucket containing that rank (clamped to the recorded max,
    /// so a one-sample histogram reports the sample itself). Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`quantile`](HistogramSnapshot::quantile)).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

// ------------------------------------------------------------- event ring --

/// One structured observability event: a slow operation, a degraded-mode
/// transition, a WAL rotation, a checkpoint rollback, an admission
/// rejection, a client connect/disconnect.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Event {
    /// Milliseconds since the Unix epoch when the event was recorded.
    pub ts_ms: u64,
    /// Event class, e.g. `"slow_op"`, `"degraded"`, `"wal_rotate"`,
    /// `"checkpoint_rollback"`, `"busy_reject"`, `"conn_open"`,
    /// `"conn_close"`.
    pub kind: String,
    /// Sheet the event concerns (empty for connection-level events).
    pub sheet: String,
    /// Operation or detail string: the op kind for slow ops, the failure
    /// cause for degraded transitions, the peer address for connections.
    pub op: String,
    /// Duration of the operation in nanoseconds (0 when not applicable).
    pub duration_ns: u64,
    /// Commit ticket involved, when applicable (0 otherwise).
    pub ticket: u64,
    /// Outcome: `"ok"`, `"err"`, or a short free-form note.
    pub outcome: String,
}

/// A bounded ring of [`Event`]s. Pushing to a full ring drops the oldest
/// record and advances a drop counter; snapshots return oldest-first.
#[derive(Debug)]
pub struct EventRing {
    inner: Mutex<VecDeque<Event>>,
    capacity: usize,
    dropped: AtomicU64,
}

/// Default [`EventRing`] capacity.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

impl Default for EventRing {
    fn default() -> EventRing {
        EventRing::new(DEFAULT_EVENT_CAPACITY)
    }
}

impl EventRing {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&self, event: Event) {
        let mut ring = lock(&self.inner);
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Events currently retained, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        lock(&self.inner).iter().cloned().collect()
    }

    /// How many events have been evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ----------------------------------------------------------- sheet health --

/// Operator-visible health of one sheet.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Health {
    /// Writes are being accepted and made durable.
    #[default]
    Healthy,
    /// A storage failure poisoned the durability path; the sheet serves
    /// reads but rejects writes until reopened.
    Degraded,
}

/// Per-sheet health record carried in metrics snapshots and stats.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SheetHealth {
    /// Sheet name.
    pub sheet: String,
    /// Current health state.
    pub health: Health,
    /// Failure cause when degraded (the first storage error observed).
    pub cause: Option<String>,
    /// When the degrade was first observed, ms since the Unix epoch.
    pub since_ms: Option<u64>,
}

// --------------------------------------------------------------- registry --

/// Default slow-op threshold: operations at or above this duration are
/// recorded in the event ring (20 ms).
pub const DEFAULT_SLOW_OP_NS: u64 = 20_000_000;

/// A per-workspace registry of named metrics plus the event ring.
///
/// Handles ([`Arc<Counter>`] etc.) are created once by
/// [`counter`](MetricsRegistry::counter) /
/// [`gauge`](MetricsRegistry::gauge) /
/// [`histogram`](MetricsRegistry::histogram) — a mutex-guarded map lookup
/// — and then cached by the instrumented layer, so steady-state recording
/// never touches the registry lock. Metric identity is the rendered
/// `name{label="v"}` key; calling a constructor twice with the same
/// name+labels returns the same handle.
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: AtomicBool,
    slow_op_ns: AtomicU64,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    events: Arc<EventRing>,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry {
            enabled: AtomicBool::new(true),
            slow_op_ns: AtomicU64::new(DEFAULT_SLOW_OP_NS),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            events: Arc::new(EventRing::default()),
        }
    }
}

/// Render the canonical metric key: `name` or `name{k="v",k2="v2"}`.
/// Label values are escaped for `"` and `\`.
pub fn metric_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        for c in v.chars() {
            match c {
                '"' => key.push_str("\\\""),
                '\\' => key.push_str("\\\\"),
                '\n' => key.push_str("\\n"),
                c => key.push(c),
            }
        }
        key.push('"');
    }
    key.push('}');
    key
}

impl MetricsRegistry {
    /// A fresh registry: enabled, default slow-op threshold, default
    /// event-ring capacity.
    pub fn new() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::default())
    }

    /// Whether recording is on. Hot paths consult this before paying for
    /// clock reads; handles themselves keep working regardless.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Toggle recording (the overhead bench's A/B switch).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Current slow-op threshold in nanoseconds.
    pub fn slow_op_ns(&self) -> u64 {
        self.slow_op_ns.load(Ordering::Relaxed)
    }

    /// Set the slow-op threshold (ops at or above it are ring-recorded).
    pub fn set_slow_op_ns(&self, ns: u64) {
        self.slow_op_ns.store(ns, Ordering::Relaxed);
    }

    /// Get or create the counter for `name` + `labels`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = metric_key(name, labels);
        Arc::clone(lock(&self.counters).entry(key).or_default())
    }

    /// Get or create the gauge for `name` + `labels`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = metric_key(name, labels);
        Arc::clone(lock(&self.gauges).entry(key).or_default())
    }

    /// Get or create the histogram for `name` + `labels`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = metric_key(name, labels);
        Arc::clone(lock(&self.histograms).entry(key).or_default())
    }

    /// The shared event ring (clone the `Arc` into layers that emit
    /// events without holding the whole registry).
    pub fn events(&self) -> Arc<EventRing> {
        Arc::clone(&self.events)
    }

    /// Record an event unconditionally (degrade transitions, rotations,
    /// rejections — events that matter regardless of duration).
    pub fn push_event(&self, event: Event) {
        if self.enabled() {
            self.events.push(event);
        }
    }

    /// Record a completed operation into the ring *iff* it crossed the
    /// slow-op threshold. The caller has already paid for the clock; this
    /// is one load + compare on the fast path.
    pub fn note_op(&self, sheet: &str, op: &str, duration_ns: u64, ticket: u64, outcome: &str) {
        if duration_ns >= self.slow_op_ns() && self.enabled() {
            self.events.push(Event {
                ts_ms: now_ms(),
                kind: "slow_op".to_string(),
                sheet: sheet.to_string(),
                op: op.to_string(),
                duration_ns,
                ticket,
                outcome: outcome.to_string(),
            });
        }
    }

    /// A point-in-time copy of every metric plus the event ring. Sheet
    /// healths are filled in by the owning service (the registry itself
    /// does not know about sheets).
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: lock(&self.counters)
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: lock(&self.gauges)
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            events: self.events.snapshot(),
            events_dropped: self.events.dropped(),
            sheets: Vec::new(),
        }
    }
}

// --------------------------------------------------------------- snapshot --

/// A point-in-time copy of a whole [`MetricsRegistry`]: every counter,
/// gauge and histogram (sorted by key), the retained event ring, and the
/// per-sheet health list filled in by the workspace service. This is the
/// payload `Request::Metrics` ships over the wire (codec in
/// `dataspread-proto`) and the input to
/// [`render_text`](RegistrySnapshot::render_text).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    /// `(key, value)` per counter, sorted by key.
    pub counters: Vec<(String, u64)>,
    /// `(key, value)` per gauge, sorted by key.
    pub gauges: Vec<(String, i64)>,
    /// `(key, snapshot)` per histogram, sorted by key.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring to make room.
    pub events_dropped: u64,
    /// Per-sheet health, filled by the workspace service.
    pub sheets: Vec<SheetHealth>,
}

/// Splice extra labels into a rendered metric key:
/// `h{op="x"}` + `quantile="0.5"` → `h{op="x",quantile="0.5"}`.
fn key_with_label(key: &str, label: &str) -> String {
    match key.strip_suffix('}') {
        Some(prefix) => format!("{prefix},{label}}}"),
        None => format!("{key}{{{label}}}"),
    }
}

impl RegistrySnapshot {
    /// Look up a counter by exact key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge by exact key.
    pub fn gauge(&self, key: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Look up a histogram by exact key.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, h)| h)
    }

    /// Health record for `sheet`, if present.
    pub fn sheet_health(&self, sheet: &str) -> Option<&SheetHealth> {
        self.sheets.iter().find(|s| s.sheet == sheet)
    }

    /// Render a Prometheus-style text exposition: one `key value` line
    /// per counter and gauge; `_count` / `_sum` / `_max` and
    /// `quantile="…"` lines per histogram; `sheet_health{…}` lines (1 =
    /// degraded, with `cause` and `since_ms` labels); events appended as
    /// `#` comment lines so the exposition stays machine-parseable.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("{k} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let (base, labels) = match k.find('{') {
                Some(i) => (&k[..i], &k[i..]),
                None => (k.as_str(), ""),
            };
            out.push_str(&format!("{base}_count{labels} {}\n", h.count()));
            out.push_str(&format!("{base}_sum{labels} {}\n", h.sum));
            out.push_str(&format!("{base}_max{labels} {}\n", h.max));
            for (q, name) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "{} {}\n",
                    key_with_label(k, &format!("quantile=\"{name}\"")),
                    h.quantile(q)
                ));
            }
        }
        for s in &self.sheets {
            let mut labels = vec![("sheet", s.sheet.as_str())];
            let cause = s.cause.clone().unwrap_or_default();
            let since = s.since_ms.map(|m| m.to_string()).unwrap_or_default();
            if s.health == Health::Degraded {
                labels.push(("cause", cause.as_str()));
                labels.push(("since_ms", since.as_str()));
            }
            out.push_str(&format!(
                "{} {}\n",
                metric_key("sheet_health", &labels),
                if s.health == Health::Degraded { 1 } else { 0 }
            ));
        }
        if self.events_dropped > 0 {
            out.push_str(&format!("events_dropped {}\n", self.events_dropped));
        }
        for e in &self.events {
            out.push_str(&format!(
                "# event ts_ms={} kind={} sheet={:?} op={:?} duration_ns={} ticket={} outcome={:?}\n",
                e.ts_ms, e.kind, e.sheet, e.op, e.duration_ns, e.ticket, e.outcome
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    /// Oracle check: percentiles from the histogram must bracket the
    /// true sorted-vec percentile within one log2 bucket.
    #[test]
    fn quantiles_track_sorted_vec_oracle() {
        let h = Histogram::new();
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 1u64;
        for i in 0..1000u64 {
            // Deterministic spread over several decades.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = (x >> 33) % (1 << (10 + (i % 20)));
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count(), 1000);
        assert_eq!(snap.max, *samples.last().unwrap());
        assert_eq!(snap.sum, samples.iter().sum::<u64>());
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * samples.len() as f64).ceil() as usize).max(1) - 1;
            let truth = samples[rank];
            let est = snap.quantile(q);
            // The estimate is the bucket's upper bound: >= truth, < 2x.
            assert!(est >= truth, "q{q}: {est} < {truth}");
            assert!(
                est <= truth.saturating_mul(2).max(1),
                "q{q}: {est} > 2*{truth}"
            );
        }
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = Histogram::new();
        let b = Histogram::new();
        let whole = Histogram::new();
        for v in [0u64, 1, 5, 100, 1 << 20, 1 << 63] {
            a.record(v);
            whole.record(v);
        }
        for v in [7u64, 7, 9000, 1 << 40] {
            b.record(v);
            whole.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let expect = whole.snapshot();
        assert_eq!(merged.buckets, expect.buckets);
        assert_eq!(merged.max, expect.max);
        assert_eq!(merged.count(), expect.count());
        assert_eq!(merged.sum, expect.sum);
    }

    #[test]
    fn empty_and_single_sample_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.99), 0);
        h.record(777);
        let s = h.snapshot();
        // Clamped to max: a one-sample histogram reports the sample.
        assert_eq!(s.p50(), 777);
        assert_eq!(s.p99(), 777);
        assert_eq!(s.mean(), 777.0);
    }

    #[test]
    fn event_ring_drops_oldest() {
        let ring = EventRing::new(3);
        for i in 0..5u64 {
            ring.push(Event {
                ticket: i,
                ..Event::default()
            });
        }
        let events = ring.snapshot();
        assert_eq!(
            events.iter().map(|e| e.ticket).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn registry_handles_are_shared_and_sorted() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("ops", &[("kind", "edit")]);
        let c2 = reg.counter("ops", &[("kind", "edit")]);
        c1.inc();
        c2.inc();
        assert_eq!(c1.get(), 2);
        reg.counter("ops", &[("kind", "fetch")]).add(5);
        reg.gauge("in_flight", &[]).set(3);
        reg.histogram("latency_ns", &[]).record_ns(1000);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("ops{kind=\"edit\"}"), Some(2));
        assert_eq!(snap.counter("ops{kind=\"fetch\"}"), Some(5));
        assert_eq!(snap.gauge("in_flight"), Some(3));
        assert_eq!(snap.histogram("latency_ns").unwrap().count(), 1);
        // Sorted by key.
        let keys: Vec<_> = snap.counters.iter().map(|(k, _)| k.clone()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn slow_op_threshold_gates_the_ring() {
        let reg = MetricsRegistry::new();
        reg.set_slow_op_ns(1000);
        reg.note_op("s", "apply_edit", 999, 1, "ok");
        reg.note_op("s", "apply_edit", 1000, 2, "ok");
        let snap = reg.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].ticket, 2);
        assert_eq!(snap.events[0].kind, "slow_op");
    }

    #[test]
    fn disabled_registry_skips_events() {
        let reg = MetricsRegistry::new();
        reg.set_enabled(false);
        assert!(!reg.enabled());
        reg.note_op("s", "op", u64::MAX, 0, "ok");
        reg.push_event(Event::default());
        assert!(reg.snapshot().events.is_empty());
        reg.set_enabled(true);
        reg.push_event(Event::default());
        assert_eq!(reg.snapshot().events.len(), 1);
    }

    #[test]
    fn metric_key_escapes_labels() {
        assert_eq!(metric_key("a", &[]), "a");
        assert_eq!(metric_key("a", &[("k", "v")]), "a{k=\"v\"}");
        assert_eq!(metric_key("a", &[("k", "q\"\\x")]), "a{k=\"q\\\"\\\\x\"}");
    }

    #[test]
    fn render_text_exposition_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("wal_fsyncs", &[("sheet", "s1")]).add(7);
        reg.gauge("in_flight", &[]).set(2);
        let h = reg.histogram("apply_edit_ns", &[("sheet", "s1")]);
        h.record_ns(500);
        h.record_ns(1500);
        let mut snap = reg.snapshot();
        snap.sheets.push(SheetHealth {
            sheet: "s1".to_string(),
            health: Health::Degraded,
            cause: Some("injected I/O error".to_string()),
            since_ms: Some(123),
        });
        let text = snap.render_text();
        assert!(text.contains("wal_fsyncs{sheet=\"s1\"} 7\n"));
        assert!(text.contains("in_flight 2\n"));
        assert!(text.contains("apply_edit_ns_count{sheet=\"s1\"} 2\n"));
        assert!(text.contains("apply_edit_ns_sum{sheet=\"s1\"} 2000\n"));
        assert!(text.contains("quantile=\"0.99\""));
        assert!(text.contains(
            "sheet_health{sheet=\"s1\",cause=\"injected I/O error\",since_ms=\"123\"} 1\n"
        ));
    }
}
