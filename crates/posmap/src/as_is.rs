//! Position-as-is: store the explicit position with every item.
//!
//! This is the naïve scheme of paper §V ("Position as-is"): a B-tree keyed
//! by the position itself. Fetch is a key lookup (O(log N)); insert and
//! delete must renumber every subsequent key — the cascading update that
//! makes large-sheet edits non-interactive (Table II).

use std::collections::BTreeMap;

use crate::PositionalMap;

/// Explicit positions in a `BTreeMap<u64, T>`.
#[derive(Debug, Clone, Default)]
pub struct PositionAsIs<T> {
    entries: BTreeMap<u64, T>,
}

impl<T> PositionAsIs<T> {
    pub fn new() -> Self {
        PositionAsIs {
            entries: BTreeMap::new(),
        }
    }

    /// Iterate items in position order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.values()
    }
}

impl<T> FromIterator<T> for PositionAsIs<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        PositionAsIs {
            entries: iter
                .into_iter()
                .enumerate()
                .map(|(i, v)| (i as u64, v))
                .collect(),
        }
    }
}

impl<T: Send + Sync> PositionalMap<T> for PositionAsIs<T> {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn get(&self, pos: usize) -> Option<&T> {
        self.entries.get(&(pos as u64))
    }

    fn replace(&mut self, pos: usize, value: T) -> Option<T> {
        match self.entries.get_mut(&(pos as u64)) {
            Some(slot) => Some(std::mem::replace(slot, value)),
            None => None,
        }
    }

    fn insert_at(&mut self, pos: usize, value: T) {
        let len = self.entries.len();
        assert!(pos <= len, "insert_at({pos}) out of bounds (len {len})");
        // Cascading update: shift [pos, len) up by one key each.
        let tail = self.entries.split_off(&(pos as u64));
        for (k, v) in tail {
            self.entries.insert(k + 1, v);
        }
        self.entries.insert(pos as u64, value);
    }

    fn remove_at(&mut self, pos: usize) -> Option<T> {
        let removed = self.entries.remove(&(pos as u64))?;
        // Cascading update: shift (pos, len) down by one key each.
        let tail = self.entries.split_off(&(pos as u64 + 1));
        for (k, v) in tail {
            self.entries.insert(k - 1, v);
        }
        Some(removed)
    }

    fn range(&self, start: usize, count: usize) -> Vec<&T> {
        self.entries
            .range(start as u64..(start + count) as u64)
            .map(|(_, v)| v)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_shifts_subsequent_positions() {
        let mut m: PositionAsIs<char> = "abcd".chars().collect();
        m.insert_at(1, 'X');
        let got: String = m.iter().collect();
        assert_eq!(got, "aXbcd");
        assert_eq!(m.get(4), Some(&'d'));
    }

    #[test]
    fn remove_shifts_back() {
        let mut m: PositionAsIs<char> = "abcd".chars().collect();
        assert_eq!(m.remove_at(1), Some('b'));
        let got: String = m.iter().collect();
        assert_eq!(got, "acd");
        assert_eq!(m.remove_at(5), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn insert_past_end_panics() {
        let mut m = PositionAsIs::new();
        m.insert_at(1, 0u8);
    }

    #[test]
    fn range_clamps() {
        let m: PositionAsIs<u32> = (0..5).collect();
        assert_eq!(m.range(3, 10), vec![&3, &4]);
        assert!(m.range(9, 3).is_empty());
    }
}
