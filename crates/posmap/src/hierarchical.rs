//! Hierarchical positional mapping: a counted B+-tree.
//!
//! The paper's positional index (§V, Figure 11) adapts order-statistic
//! trees to a B+-tree layout: instead of keys, every internal node stores
//! the *count* of items in each child's subtree; leaves store the payloads
//! (tuple pointers in the storage engine). Fetching, inserting, or deleting
//! at a position descends by subtracting child counts — O(log N) for all
//! three operations, with no cascading renumbering.

use crate::PositionalMap;

/// Maximum entries per leaf and maximum children per internal node.
/// Corresponds to the B+-tree order `m`; nodes split at `MAX + 1` and two
/// merged nodes always fit.
const MAX: usize = 64;
/// Minimum fill for non-root nodes (`⌈m/2⌉`).
const MIN: usize = MAX / 2;
/// Bulk-load fill factor keeps some slack so early inserts don't split.
const BULK_FILL: usize = MAX * 3 / 4;

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf(Vec<T>),
    Internal {
        /// `counts[i]` = number of items in `children[i]`'s subtree.
        counts: Vec<usize>,
        children: Vec<Node<T>>,
        /// Sum of `counts` (cached).
        total: usize,
    },
}

impl<T> Node<T> {
    fn count(&self) -> usize {
        match self {
            Node::Leaf(items) => items.len(),
            Node::Internal { total, .. } => *total,
        }
    }

    fn is_underfull(&self) -> bool {
        match self {
            Node::Leaf(items) => items.len() < MIN,
            Node::Internal { children, .. } => children.len() < MIN,
        }
    }

    fn get(&self, pos: usize) -> Option<&T> {
        match self {
            Node::Leaf(items) => items.get(pos),
            Node::Internal {
                counts, children, ..
            } => {
                let mut pos = pos;
                for (i, &cnt) in counts.iter().enumerate() {
                    if pos < cnt {
                        return children[i].get(pos);
                    }
                    pos -= cnt;
                }
                None
            }
        }
    }

    fn get_mut(&mut self, pos: usize) -> Option<&mut T> {
        match self {
            Node::Leaf(items) => items.get_mut(pos),
            Node::Internal {
                counts, children, ..
            } => {
                let mut pos = pos;
                for (i, &cnt) in counts.iter().enumerate() {
                    if pos < cnt {
                        return children[i].get_mut(pos);
                    }
                    pos -= cnt;
                }
                None
            }
        }
    }

    /// Insert `value` at `pos`; returns the split-off right sibling when the
    /// node overflows.
    fn insert(&mut self, pos: usize, value: T) -> Option<Node<T>> {
        match self {
            Node::Leaf(items) => {
                items.insert(pos, value);
                if items.len() > MAX {
                    let right = items.split_off(items.len() / 2);
                    Some(Node::Leaf(right))
                } else {
                    None
                }
            }
            Node::Internal {
                counts,
                children,
                total,
            } => {
                // Choose the first child that can host `pos` (<= so appends
                // go to the rightmost eligible subtree).
                let mut pos = pos;
                let mut idx = counts.len() - 1;
                for (i, &cnt) in counts.iter().enumerate() {
                    if pos <= cnt {
                        idx = i;
                        break;
                    }
                    pos -= cnt;
                }
                let split = children[idx].insert(pos, value);
                *total += 1;
                counts[idx] = children[idx].count();
                if let Some(right) = split {
                    counts.insert(idx + 1, right.count());
                    children.insert(idx + 1, right);
                }
                if children.len() > MAX {
                    let at = children.len() / 2;
                    let rchildren = children.split_off(at);
                    let rcounts = counts.split_off(at);
                    let rtotal: usize = rcounts.iter().sum();
                    *total -= rtotal;
                    Some(Node::Internal {
                        counts: rcounts,
                        children: rchildren,
                        total: rtotal,
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Remove the item at `pos` (must exist).
    fn remove(&mut self, pos: usize) -> T {
        match self {
            Node::Leaf(items) => items.remove(pos),
            Node::Internal {
                counts,
                children,
                total,
            } => {
                let mut pos = pos;
                let mut idx = 0;
                for (i, &cnt) in counts.iter().enumerate() {
                    if pos < cnt {
                        idx = i;
                        break;
                    }
                    pos -= cnt;
                }
                let removed = children[idx].remove(pos);
                *total -= 1;
                counts[idx] -= 1;
                if children[idx].is_underfull() {
                    rebalance(counts, children, idx);
                }
                removed
            }
        }
    }

    fn collect_range<'a>(&'a self, start: usize, count: usize, out: &mut Vec<&'a T>) {
        if count == 0 {
            return;
        }
        match self {
            Node::Leaf(items) => {
                let end = (start + count).min(items.len());
                if start < items.len() {
                    out.extend(items[start..end].iter());
                }
            }
            Node::Internal {
                counts, children, ..
            } => {
                let mut start = start;
                let mut remaining = count;
                for (i, &cnt) in counts.iter().enumerate() {
                    if remaining == 0 {
                        break;
                    }
                    if start >= cnt {
                        start -= cnt;
                        continue;
                    }
                    let take = remaining.min(cnt - start);
                    children[i].collect_range(start, take, out);
                    remaining -= take;
                    start = 0;
                }
            }
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Internal { children, .. } => 1 + children[0].depth(),
        }
    }

    /// Structural invariant check used by tests: counts match subtree sizes,
    /// non-root fill bounds hold, all leaves at the same depth.
    fn check(&self, is_root: bool, expected_depth: usize) -> usize {
        match self {
            Node::Leaf(items) => {
                assert!(items.len() <= MAX, "leaf overflow");
                if !is_root {
                    assert!(items.len() >= MIN, "leaf underflow: {}", items.len());
                }
                assert_eq!(expected_depth, 1, "leaf at wrong depth");
                items.len()
            }
            Node::Internal {
                counts,
                children,
                total,
            } => {
                assert!(children.len() <= MAX, "internal overflow");
                assert!(children.len() >= 2, "internal with < 2 children");
                if !is_root {
                    assert!(children.len() >= MIN, "internal underflow");
                }
                assert_eq!(counts.len(), children.len());
                let mut sum = 0;
                for (i, child) in children.iter().enumerate() {
                    let c = child.check(false, expected_depth - 1);
                    assert_eq!(c, counts[i], "stale count at child {i}");
                    sum += c;
                }
                assert_eq!(sum, *total, "stale total");
                sum
            }
        }
    }
}

/// Fix an underfull `children[idx]` by borrowing from a sibling or merging.
fn rebalance<T>(counts: &mut Vec<usize>, children: &mut Vec<Node<T>>, idx: usize) {
    // Try borrowing from the left sibling.
    if idx > 0 && can_lend(&children[idx - 1]) {
        let (left, rest) = children.split_at_mut(idx);
        move_last_to_front(&mut left[idx - 1], &mut rest[0]);
        counts[idx - 1] = children[idx - 1].count();
        counts[idx] = children[idx].count();
        return;
    }
    // Try borrowing from the right sibling.
    if idx + 1 < children.len() && can_lend(&children[idx + 1]) {
        let (left, rest) = children.split_at_mut(idx + 1);
        move_first_to_back(&mut rest[0], &mut left[idx]);
        counts[idx] = children[idx].count();
        counts[idx + 1] = children[idx + 1].count();
        return;
    }
    // Merge with a sibling (two minimally-filled nodes always fit in one).
    let merge_left = if idx > 0 { idx - 1 } else { idx };
    let right = children.remove(merge_left + 1);
    counts.remove(merge_left + 1);
    merge_into(&mut children[merge_left], right);
    counts[merge_left] = children[merge_left].count();
}

fn can_lend<T>(node: &Node<T>) -> bool {
    match node {
        Node::Leaf(items) => items.len() > MIN,
        Node::Internal { children, .. } => children.len() > MIN,
    }
}

fn move_last_to_front<T>(left: &mut Node<T>, right: &mut Node<T>) {
    match (left, right) {
        (Node::Leaf(l), Node::Leaf(r)) => {
            let item = l.pop().expect("lender non-empty");
            r.insert(0, item);
        }
        (
            Node::Internal {
                counts: lc,
                children: lch,
                total: lt,
            },
            Node::Internal {
                counts: rc,
                children: rch,
                total: rt,
            },
        ) => {
            let child = lch.pop().expect("lender non-empty");
            let cnt = lc.pop().expect("lender non-empty");
            *lt -= cnt;
            *rt += cnt;
            rch.insert(0, child);
            rc.insert(0, cnt);
        }
        _ => unreachable!("siblings are at the same depth"),
    }
}

fn move_first_to_back<T>(right: &mut Node<T>, left: &mut Node<T>) {
    match (right, left) {
        (Node::Leaf(r), Node::Leaf(l)) => {
            let item = r.remove(0);
            l.push(item);
        }
        (
            Node::Internal {
                counts: rc,
                children: rch,
                total: rt,
            },
            Node::Internal {
                counts: lc,
                children: lch,
                total: lt,
            },
        ) => {
            let child = rch.remove(0);
            let cnt = rc.remove(0);
            *rt -= cnt;
            *lt += cnt;
            lch.push(child);
            lc.push(cnt);
        }
        _ => unreachable!("siblings are at the same depth"),
    }
}

fn merge_into<T>(left: &mut Node<T>, right: Node<T>) {
    match (left, right) {
        (Node::Leaf(l), Node::Leaf(mut r)) => l.append(&mut r),
        (
            Node::Internal {
                counts: lc,
                children: lch,
                total: lt,
            },
            Node::Internal {
                counts: mut rc,
                children: mut rch,
                total: rt,
            },
        ) => {
            lch.append(&mut rch);
            lc.append(&mut rc);
            *lt += rt;
        }
        _ => unreachable!("siblings are at the same depth"),
    }
}

/// A counted B+-tree mapping positions to payloads — the paper's
/// *hierarchical positional mapping*.
#[derive(Debug, Clone)]
pub struct HierarchicalPosMap<T> {
    root: Node<T>,
}

impl<T> Default for HierarchicalPosMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HierarchicalPosMap<T> {
    pub fn new() -> Self {
        HierarchicalPosMap {
            root: Node::Leaf(Vec::new()),
        }
    }

    /// Tree height (1 = a single leaf). `O(log N)` operations traverse this
    /// many nodes.
    pub fn depth(&self) -> usize {
        self.root.depth()
    }

    /// Iterate items in position order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            stack: vec![(&self.root, 0)],
        }
    }

    /// Validate structural invariants (tests only; O(N)).
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let d = self.root.depth();
        self.root.check(true, d);
    }

    /// Bulk-load from items in order: builds packed leaves and then each
    /// internal level, O(N) — used when importing large sheets.
    pub fn bulk_load(items: impl IntoIterator<Item = T>) -> Self {
        let mut items = items.into_iter();
        let mut leaves: Vec<Node<T>> = Vec::new();
        loop {
            let chunk: Vec<T> = items.by_ref().take(BULK_FILL).collect();
            if chunk.is_empty() {
                break;
            }
            leaves.push(Node::Leaf(chunk));
        }
        if leaves.is_empty() {
            return Self::new();
        }
        // Fix an underfull final leaf: merge with its predecessor when the
        // pair fits in one node, otherwise split the pair evenly (the pair
        // then holds > MAX items, so both halves are >= MIN).
        if leaves.len() >= 2 {
            let under = matches!(leaves.last(), Some(Node::Leaf(l)) if l.len() < MIN);
            if under {
                let Some(Node::Leaf(last)) = leaves.pop() else {
                    unreachable!("checked leaf above")
                };
                let Some(Node::Leaf(mut prev)) = leaves.pop() else {
                    unreachable!("bulk leaves are all leaves")
                };
                prev.extend(last);
                if prev.len() <= MAX {
                    leaves.push(Node::Leaf(prev));
                } else {
                    let right = prev.split_off(prev.len() / 2);
                    leaves.push(Node::Leaf(prev));
                    leaves.push(Node::Leaf(right));
                }
            }
        }
        let mut level = leaves;
        while level.len() > 1 {
            let mut groups: Vec<Vec<Node<T>>> = Vec::new();
            let mut iter = level.into_iter().peekable();
            while iter.peek().is_some() {
                groups.push(iter.by_ref().take(BULK_FILL).collect());
            }
            // Same underfull fix one level up, in units of children.
            if groups.len() >= 2 && groups.last().map_or(0, Vec::len) < MIN {
                let last = groups.pop().expect("len >= 2");
                let prev = groups.last_mut().expect("len >= 2");
                prev.extend(last);
                if prev.len() > MAX {
                    let right = prev.split_off(prev.len() / 2);
                    groups.push(right);
                }
            }
            level = groups
                .into_iter()
                .map(|group| {
                    let counts: Vec<usize> = group.iter().map(Node::count).collect();
                    let total = counts.iter().sum();
                    Node::Internal {
                        counts,
                        children: group,
                        total,
                    }
                })
                .collect();
        }
        HierarchicalPosMap {
            root: level.pop().expect("non-empty"),
        }
    }
}

impl<T: Send + Sync> PositionalMap<T> for HierarchicalPosMap<T> {
    fn len(&self) -> usize {
        self.root.count()
    }

    fn get(&self, pos: usize) -> Option<&T> {
        self.root.get(pos)
    }

    fn replace(&mut self, pos: usize, value: T) -> Option<T> {
        self.root
            .get_mut(pos)
            .map(|slot| std::mem::replace(slot, value))
    }

    fn insert_at(&mut self, pos: usize, value: T) {
        let len = self.len();
        assert!(pos <= len, "insert_at({pos}) out of bounds (len {len})");
        if let Some(right) = self.root.insert(pos, value) {
            let left = std::mem::replace(&mut self.root, Node::Leaf(Vec::new()));
            let counts = vec![left.count(), right.count()];
            let total = counts.iter().sum();
            self.root = Node::Internal {
                counts,
                children: vec![left, right],
                total,
            };
        }
    }

    fn remove_at(&mut self, pos: usize) -> Option<T> {
        if pos >= self.len() {
            return None;
        }
        let removed = self.root.remove(pos);
        // Shrink the root when it has a single child left.
        if let Node::Internal { children, .. } = &mut self.root {
            if children.len() == 1 {
                let child = children.pop().expect("one child");
                self.root = child;
            }
        }
        Some(removed)
    }

    fn range(&self, start: usize, count: usize) -> Vec<&T> {
        let mut out = Vec::with_capacity(count.min(self.len().saturating_sub(start)));
        self.root.collect_range(start, count, &mut out);
        out
    }
}

impl<T> FromIterator<T> for HierarchicalPosMap<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self::bulk_load(iter)
    }
}

/// In-order iterator over a [`HierarchicalPosMap`].
pub struct Iter<'a, T> {
    /// Stack of (node, next index within node).
    stack: Vec<(&'a Node<T>, usize)>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        loop {
            let (node, idx) = self.stack.last_mut()?;
            match node {
                Node::Leaf(items) => {
                    if *idx < items.len() {
                        let item = &items[*idx];
                        *idx += 1;
                        return Some(item);
                    }
                    self.stack.pop();
                }
                Node::Internal { children, .. } => {
                    if *idx < children.len() {
                        let child = &children[*idx];
                        *idx += 1;
                        self.stack.push((child, 0));
                    } else {
                        self.stack.pop();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let m: HierarchicalPosMap<u32> = HierarchicalPosMap::new();
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(0), None);
        assert_eq!(m.depth(), 1);
    }

    #[test]
    fn sequential_appends_split_correctly() {
        let mut m = HierarchicalPosMap::new();
        for i in 0..10_000u32 {
            m.push(i);
        }
        m.check_invariants();
        assert_eq!(m.len(), 10_000);
        for i in (0..10_000).step_by(97) {
            assert_eq!(m.get(i), Some(&(i as u32)));
        }
        assert!(m.depth() >= 3, "10k items at order 64 must be >= 3 levels");
    }

    #[test]
    fn front_inserts_keep_order() {
        let mut m = HierarchicalPosMap::new();
        for i in 0..5_000u32 {
            m.insert_at(0, i);
        }
        m.check_invariants();
        assert_eq!(m.get(0), Some(&4_999));
        assert_eq!(m.get(4_999), Some(&0));
    }

    #[test]
    fn middle_insert_shifts() {
        let mut m: HierarchicalPosMap<u32> = (0..200).collect();
        m.insert_at(100, 9999);
        assert_eq!(m.get(100), Some(&9999));
        assert_eq!(m.get(101), Some(&100));
        assert_eq!(m.get(99), Some(&99));
        assert_eq!(m.len(), 201);
        m.check_invariants();
    }

    #[test]
    fn removals_rebalance() {
        let mut m: HierarchicalPosMap<u32> = (0..10_000).collect();
        // Remove from the front to force repeated underflow handling.
        for expected in 0..9_000u32 {
            assert_eq!(m.remove_at(0), Some(expected));
        }
        m.check_invariants();
        assert_eq!(m.len(), 1_000);
        assert_eq!(m.get(0), Some(&9_000));
    }

    #[test]
    fn remove_at_random_positions_matches_vec() {
        let mut m: HierarchicalPosMap<u32> = (0..1_000).collect();
        let mut oracle: Vec<u32> = (0..1_000).collect();
        // Deterministic pseudo-random positions.
        let mut state = 0x9E3779B97F4A7C15u64;
        while !oracle.is_empty() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pos = (state >> 33) as usize % oracle.len();
            assert_eq!(m.remove_at(pos), Some(oracle.remove(pos)));
        }
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn bulk_load_matches_iteration() {
        for n in [0usize, 1, 47, 48, 49, 64, 65, 1_000, 10_000] {
            let m: HierarchicalPosMap<usize> = (0..n).collect();
            m.check_invariants();
            assert_eq!(m.len(), n);
            let collected: Vec<usize> = m.iter().copied().collect();
            assert_eq!(collected, (0..n).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn range_scan() {
        let m: HierarchicalPosMap<u32> = (0..1_000).collect();
        let r = m.range(500, 10);
        let expected: Vec<u32> = (500..510).collect();
        assert_eq!(r.into_iter().copied().collect::<Vec<_>>(), expected);
        assert_eq!(m.range(995, 100).len(), 5);
        assert!(m.range(2_000, 5).is_empty());
    }

    #[test]
    fn replace_in_place() {
        let mut m: HierarchicalPosMap<u32> = (0..100).collect();
        assert_eq!(m.replace(50, 5555), Some(50));
        assert_eq!(m.get(50), Some(&5555));
        assert_eq!(m.replace(100, 1), None);
        assert_eq!(m.len(), 100);
    }

    #[test]
    fn logarithmic_depth_at_scale() {
        let m: HierarchicalPosMap<u8> = std::iter::repeat_n(0u8, 1_000_000).collect();
        // order-64 tree over 1M items: depth should be about log_48(1e6) ~ 4.
        assert!(m.depth() <= 5, "depth {} too deep", m.depth());
        m.check_invariants();
    }
}
