//! Positional mapping: maintaining an *ordering* of items under
//! position-based fetch, insert, and delete (DataSpread, ICDE 2018, §V).
//!
//! Storing row/column numbers explicitly makes inserts cascade: inserting at
//! position `n` renumbers every later item. This crate provides the three
//! schemes the paper evaluates (Table II, Figure 18):
//!
//! | scheme | fetch | insert/delete |
//! |---|---|---|
//! | [`PositionAsIs`] — explicit positions in a B-tree | O(log N) | O(N log N) |
//! | [`MonotonicMap`] — gapped monotonic identifiers (Raman et al.) | O(N) | O(log N) amortized |
//! | [`HierarchicalPosMap`] — counted B+-tree (order-statistic tree) | O(log N) | O(log N) |
//!
//! All three implement [`PositionalMap`] so the storage engine can swap them
//! per experiment.

pub mod as_is;
pub mod hierarchical;
pub mod monotonic;

pub use as_is::PositionAsIs;
pub use hierarchical::HierarchicalPosMap;
pub use monotonic::MonotonicMap;

/// Which positional-mapping scheme a translator should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PosMapKind {
    /// Explicit positions; cascading renumbering on insert/delete.
    AsIs,
    /// Gapped monotonic identifiers; linear-time positional fetch.
    Monotonic,
    /// Counted B+-tree; logarithmic everything (the paper's choice).
    #[default]
    Hierarchical,
}

/// An ordered collection addressed purely by position.
///
/// Positions are dense: after any operation the items occupy positions
/// `0..len()`. `insert_at(pos, v)` shifts items at `pos..` right by one;
/// `remove_at(pos)` shifts items at `pos+1..` left by one.
///
/// `Send + Sync` are supertraits so boxed maps can move between threads
/// and serve concurrent readers — the concurrent workspace serves each
/// sheet (translators and their posmaps included) behind a reader-writer
/// lock, so positional fetches run from many threads at once.
pub trait PositionalMap<T>: Send + Sync {
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch the item at `pos`.
    fn get(&self, pos: usize) -> Option<&T>;

    /// Replace the item at `pos`, returning the old item.
    fn replace(&mut self, pos: usize, value: T) -> Option<T>;

    /// Insert so that `value` ends up at `pos` (`pos <= len`).
    ///
    /// # Panics
    /// Panics if `pos > len()`.
    fn insert_at(&mut self, pos: usize, value: T);

    /// Remove and return the item at `pos`.
    fn remove_at(&mut self, pos: usize) -> Option<T>;

    /// Append at the end.
    fn push(&mut self, value: T) {
        self.insert_at(self.len(), value);
    }

    /// Collect `count` items starting at `start` (clamped to the end) —
    /// the positional range scan behind `getCells` and scrolling.
    fn range(&self, start: usize, count: usize) -> Vec<&T>;
}

/// Dispatch-erased constructor used by the engine crate.
pub fn new_posmap<T: Clone + Send + Sync + 'static>(kind: PosMapKind) -> Box<dyn PositionalMap<T>> {
    match kind {
        PosMapKind::AsIs => Box::new(PositionAsIs::new()),
        PosMapKind::Monotonic => Box::new(MonotonicMap::new()),
        PosMapKind::Hierarchical => Box::new(HierarchicalPosMap::new()),
    }
}

/// Dispatch-erased bulk constructor (O(N) bulk load for the hierarchical
/// scheme — used when importing large sheets).
pub fn posmap_from<T: Clone + Send + Sync + 'static>(
    kind: PosMapKind,
    items: impl IntoIterator<Item = T>,
) -> Box<dyn PositionalMap<T>> {
    match kind {
        PosMapKind::AsIs => Box::new(items.into_iter().collect::<PositionAsIs<T>>()),
        PosMapKind::Monotonic => Box::new(items.into_iter().collect::<MonotonicMap<T>>()),
        PosMapKind::Hierarchical => Box::new(HierarchicalPosMap::bulk_load(items)),
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise(mut m: Box<dyn PositionalMap<u32>>) {
        assert!(m.is_empty());
        m.push(10);
        m.push(30);
        m.insert_at(1, 20);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(0), Some(&10));
        assert_eq!(m.get(1), Some(&20));
        assert_eq!(m.get(2), Some(&30));
        assert_eq!(m.get(3), None);
        assert_eq!(m.range(1, 5), vec![&20, &30]);
        assert_eq!(m.replace(1, 21), Some(20));
        assert_eq!(m.remove_at(0), Some(10));
        assert_eq!(m.get(0), Some(&21));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn all_kinds_satisfy_contract() {
        for kind in [
            PosMapKind::AsIs,
            PosMapKind::Monotonic,
            PosMapKind::Hierarchical,
        ] {
            exercise(new_posmap::<u32>(kind));
        }
    }

    #[test]
    fn default_kind_is_hierarchical() {
        assert_eq!(PosMapKind::default(), PosMapKind::Hierarchical);
    }
}
