//! Monotonic positional mapping: gapped, monotonically increasing
//! identifiers.
//!
//! Motivated by online dynamic reordering (Raman et al., VLDB 1999), this
//! baseline stores a monotonically increasing key sequence *with gaps*.
//! Inserts pick an unused key between the neighbours (O(log N) once the
//! insertion point is known); positional fetch, however, must discard the
//! first `n-1` items to find the `n`-th — the linear-time behaviour visible
//! in Figure 18(a). When a gap is exhausted the whole key space is
//! renumbered (rare, amortized).

use std::collections::BTreeMap;

use crate::PositionalMap;

/// Default spacing between freshly assigned keys.
const GAP: u64 = 1 << 20;

/// Gapped monotonic identifiers in a `BTreeMap<u64, T>`.
#[derive(Debug, Clone, Default)]
pub struct MonotonicMap<T> {
    entries: BTreeMap<u64, T>,
    /// Number of full renumber passes performed (exposed for tests/benches).
    renumber_count: u64,
}

impl<T> MonotonicMap<T> {
    pub fn new() -> Self {
        MonotonicMap {
            entries: BTreeMap::new(),
            renumber_count: 0,
        }
    }

    pub fn renumber_count(&self) -> u64 {
        self.renumber_count
    }

    /// Iterate items in position order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.values()
    }

    /// The stored key of the item at `pos` — requires the linear walk that
    /// makes this scheme slow for fetches.
    fn key_at(&self, pos: usize) -> Option<u64> {
        self.entries.keys().nth(pos).copied()
    }

    fn renumber(&mut self) {
        let old = std::mem::take(&mut self.entries);
        for (i, (_, v)) in old.into_iter().enumerate() {
            self.entries.insert((i as u64 + 1) * GAP, v);
        }
        self.renumber_count += 1;
    }
}

impl<T> FromIterator<T> for MonotonicMap<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        MonotonicMap {
            entries: iter
                .into_iter()
                .enumerate()
                .map(|(i, v)| ((i as u64 + 1) * GAP, v))
                .collect(),
            renumber_count: 0,
        }
    }
}

impl<T: Send + Sync> PositionalMap<T> for MonotonicMap<T> {
    fn len(&self) -> usize {
        self.entries.len()
    }

    fn get(&self, pos: usize) -> Option<&T> {
        // O(pos): discard the first `pos` entries.
        self.entries.values().nth(pos)
    }

    fn replace(&mut self, pos: usize, value: T) -> Option<T> {
        let key = self.key_at(pos)?;
        self.entries
            .get_mut(&key)
            .map(|slot| std::mem::replace(slot, value))
    }

    fn insert_at(&mut self, pos: usize, value: T) {
        let len = self.entries.len();
        assert!(pos <= len, "insert_at({pos}) out of bounds (len {len})");
        let succ = self.key_at(pos);
        let pred = if pos == 0 { None } else { self.key_at(pos - 1) };
        let key = match (pred, succ) {
            (None, None) => GAP,
            (Some(p), None) => p.checked_add(GAP).unwrap_or({
                // Key space exhausted at the top; renumber and retry.
                u64::MAX // placeholder, replaced below
            }),
            (None, Some(s)) if s >= 2 => s / 2,
            (Some(p), Some(s)) if s - p >= 2 => p + (s - p) / 2,
            _ => u64::MAX, // no gap available
        };
        if key == u64::MAX || self.entries.contains_key(&key) {
            self.renumber();
            self.insert_at(pos, value);
            return;
        }
        self.entries.insert(key, value);
    }

    fn remove_at(&mut self, pos: usize) -> Option<T> {
        let key = self.key_at(pos)?;
        self.entries.remove(&key)
    }

    fn range(&self, start: usize, count: usize) -> Vec<&T> {
        self.entries.values().skip(start).take(count).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_preserved_across_middle_inserts() {
        let mut m: MonotonicMap<u32> = (0..10).collect();
        m.insert_at(5, 99);
        let got: Vec<_> = m.iter().copied().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 99, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn exhausted_gap_triggers_renumber() {
        let mut m = MonotonicMap::new();
        m.push(0u32);
        m.push(1);
        // Repeatedly split the same gap until it cannot be split further.
        for i in 0..40 {
            m.insert_at(1, 100 + i);
        }
        assert!(
            m.renumber_count() > 0,
            "gap of 2^20 must exhaust within 40 bisections"
        );
        // Order must survive renumbering: position 0 and last are untouched.
        assert_eq!(m.get(0), Some(&0));
        assert_eq!(m.get(m.len() - 1), Some(&1));
    }

    #[test]
    fn remove_and_replace_by_position() {
        let mut m: MonotonicMap<char> = "abcde".chars().collect();
        assert_eq!(m.remove_at(2), Some('c'));
        assert_eq!(m.replace(2, 'D'), Some('d'));
        let got: String = m.iter().collect();
        assert_eq!(got, "abDe");
        assert_eq!(m.remove_at(10), None);
        assert_eq!(m.replace(10, 'x'), None);
    }

    #[test]
    fn range_skips_linearly() {
        let m: MonotonicMap<u32> = (0..100).collect();
        let r = m.range(95, 10);
        assert_eq!(r, vec![&95, &96, &97, &98, &99]);
    }
}
