//! Property tests: every positional-map scheme must agree with a `Vec`
//! oracle under arbitrary operation sequences (paper §V requires all three
//! schemes to expose identical ordering semantics; they differ only in
//! complexity).

use proptest::prelude::*;

use dataspread_posmap::{HierarchicalPosMap, MonotonicMap, PositionAsIs, PositionalMap};

#[derive(Debug, Clone)]
enum Op {
    Insert(usize, u32),
    Remove(usize),
    Replace(usize, u32),
    Get(usize),
    Range(usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..512, any::<u32>()).prop_map(|(p, v)| Op::Insert(p, v)),
        (0usize..512).prop_map(Op::Remove),
        (0usize..512, any::<u32>()).prop_map(|(p, v)| Op::Replace(p, v)),
        (0usize..512).prop_map(Op::Get),
        (0usize..512, 0usize..64).prop_map(|(s, c)| Op::Range(s, c)),
    ]
}

fn run_against_oracle<M: PositionalMap<u32>>(mut map: M, ops: &[Op], check: impl Fn(&M)) {
    let mut oracle: Vec<u32> = Vec::new();
    for op in ops {
        match *op {
            Op::Insert(p, v) => {
                let p = p.min(oracle.len());
                oracle.insert(p, v);
                map.insert_at(p, v);
            }
            Op::Remove(p) => {
                let expected = if p < oracle.len() {
                    Some(oracle.remove(p))
                } else {
                    None
                };
                assert_eq!(map.remove_at(p), expected);
            }
            Op::Replace(p, v) => {
                let expected = oracle.get_mut(p).map(|slot| std::mem::replace(slot, v));
                assert_eq!(map.replace(p, v), expected);
            }
            Op::Get(p) => {
                assert_eq!(map.get(p), oracle.get(p));
            }
            Op::Range(s, c) => {
                let got: Vec<u32> = map.range(s, c).into_iter().copied().collect();
                let expected: Vec<u32> = oracle.iter().skip(s).take(c).copied().collect();
                assert_eq!(got, expected);
            }
        }
        assert_eq!(map.len(), oracle.len());
        check(&map);
    }
    // Final full scan.
    let got: Vec<u32> = map.range(0, oracle.len()).into_iter().copied().collect();
    assert_eq!(got, oracle);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hierarchical_matches_vec(ops in prop::collection::vec(op_strategy(), 1..300)) {
        run_against_oracle(HierarchicalPosMap::new(), &ops, |m| m.check_invariants());
    }

    #[test]
    fn as_is_matches_vec(ops in prop::collection::vec(op_strategy(), 1..200)) {
        run_against_oracle(PositionAsIs::new(), &ops, |_| {});
    }

    #[test]
    fn monotonic_matches_vec(ops in prop::collection::vec(op_strategy(), 1..200)) {
        run_against_oracle(MonotonicMap::new(), &ops, |_| {});
    }

    #[test]
    fn hierarchical_bulk_load_equals_incremental(items in prop::collection::vec(any::<u32>(), 0..2000)) {
        let bulk: HierarchicalPosMap<u32> = items.iter().copied().collect();
        bulk.check_invariants();
        let mut incr = HierarchicalPosMap::new();
        for &v in &items {
            incr.push(v);
        }
        let a: Vec<u32> = bulk.iter().copied().collect();
        let b: Vec<u32> = incr.iter().copied().collect();
        prop_assert_eq!(&a, &items);
        prop_assert_eq!(a, b);
    }
}
