//! Property tests for the [`PositionalMap`] *invariants* (paper §V): the
//! three schemes must behave like a dense, order-preserving sequence under
//! positional insert and delete. Where `tests/oracle.rs` checks agreement
//! with a `Vec` oracle over long op tapes, these properties pin down the
//! individual laws:
//!
//! * **lookup-after-insert** — `insert_at(p, v)` makes `get(p) == v`,
//!   leaves positions `< p` alone, and shifts positions `>= p` right;
//! * **shift-after-delete** — `remove_at(p)` shifts positions `> p` left;
//! * **order preservation** — surviving elements keep their relative
//!   order across arbitrary insert/remove interleavings;
//! * **bulk-load equivalence** — `posmap_from` (the O(N) import path)
//!   yields the same sequence as incremental pushes, and `range` agrees
//!   with repeated `get`.

use proptest::prelude::*;

use dataspread_posmap::{new_posmap, posmap_from, PosMapKind, PositionalMap};

const KINDS: [PosMapKind; 3] = [
    PosMapKind::AsIs,
    PosMapKind::Monotonic,
    PosMapKind::Hierarchical,
];

fn build(kind: PosMapKind, items: &[u32]) -> Box<dyn PositionalMap<u32>> {
    let mut map = new_posmap::<u32>(kind);
    for &v in items {
        map.push(v);
    }
    map
}

fn contents(map: &dyn PositionalMap<u32>) -> Vec<u32> {
    (0..map.len())
        .map(|i| *map.get(i).expect("dense"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lookup_after_insert(
        base in prop::collection::vec(any::<u32>(), 0..48),
        pos in 0usize..49,
        value in any::<u32>(),
    ) {
        let pos = pos.min(base.len());
        for kind in KINDS {
            let mut map = build(kind, &base);
            map.insert_at(pos, value);
            prop_assert_eq!(map.len(), base.len() + 1, "{:?}", kind);
            prop_assert_eq!(map.get(pos), Some(&value), "{:?}: inserted value", kind);
            for (i, expected) in base.iter().enumerate() {
                // Prefix stays put; the suffix shifts right by one.
                let at = if i < pos { i } else { i + 1 };
                prop_assert_eq!(map.get(at), Some(expected), "{:?}: shift at {}", kind, i);
            }
            prop_assert_eq!(map.get(base.len() + 1), None, "{:?}: dense end", kind);
        }
    }

    #[test]
    fn shift_after_delete(
        base in prop::collection::vec(any::<u32>(), 1..48),
        pos in 0usize..48,
    ) {
        let pos = pos.min(base.len() - 1);
        for kind in KINDS {
            let mut map = build(kind, &base);
            prop_assert_eq!(map.remove_at(pos), Some(base[pos]), "{:?}", kind);
            prop_assert_eq!(map.len(), base.len() - 1, "{:?}", kind);
            for (i, expected) in base.iter().enumerate().filter(|(i, _)| *i != pos) {
                // Prefix stays put; the suffix shifts left by one.
                let at = if i < pos { i } else { i - 1 };
                prop_assert_eq!(map.get(at), Some(expected), "{:?}: shift at {}", kind, i);
            }
            prop_assert_eq!(map.get(base.len() - 1), None, "{:?}: dense end", kind);
        }
    }

    #[test]
    fn order_preservation_under_interleaved_edits(
        base_len in 1usize..32,
        edits in prop::collection::vec((any::<bool>(), 0usize..64, any::<u32>()), 0..48),
    ) {
        // Tag originals with even ids; insertions get odd ids so the two
        // populations are distinguishable afterwards.
        let originals: Vec<u32> = (0..base_len as u32).map(|i| i * 2).collect();
        for kind in KINDS {
            let mut map = build(kind, &originals);
            for (is_insert, pos, v) in &edits {
                if *is_insert {
                    let pos = (*pos).min(map.len());
                    map.insert_at(pos, v | 1); // odd id = insertion
                } else if !map.is_empty() {
                    map.remove_at(pos % map.len());
                }
            }
            let survivors: Vec<u32> = contents(map.as_ref())
                .into_iter()
                .filter(|v| v % 2 == 0)
                .collect();
            let mut sorted = survivors.clone();
            sorted.sort_unstable();
            prop_assert_eq!(
                survivors,
                sorted,
                "{:?}: surviving originals out of relative order",
                kind
            );
        }
    }

    #[test]
    fn bulk_load_matches_incremental_and_range_matches_get(
        items in prop::collection::vec(any::<u32>(), 0..96),
        start in 0usize..100,
        count in 0usize..40,
    ) {
        for kind in KINDS {
            let bulk = posmap_from(kind, items.iter().copied());
            let incremental = build(kind, &items);
            prop_assert_eq!(bulk.len(), items.len(), "{:?}", kind);
            prop_assert_eq!(
                contents(bulk.as_ref()),
                contents(incremental.as_ref()),
                "{:?}: bulk load must equal incremental build",
                kind
            );
            let scanned: Vec<u32> = bulk.range(start, count).into_iter().copied().collect();
            let expected: Vec<u32> = items.iter().skip(start).take(count).copied().collect();
            prop_assert_eq!(scanned, expected, "{:?}: range is a positional scan", kind);
        }
    }

    #[test]
    fn replace_touches_exactly_one_position(
        base in prop::collection::vec(any::<u32>(), 1..48),
        pos in 0usize..48,
        value in any::<u32>(),
    ) {
        let pos = pos.min(base.len() - 1);
        for kind in KINDS {
            let mut map = build(kind, &base);
            prop_assert_eq!(map.replace(pos, value), Some(base[pos]), "{:?}", kind);
            let mut expected = base.clone();
            expected[pos] = value;
            prop_assert_eq!(
                contents(map.as_ref()),
                expected,
                "{:?}: replace must not shift neighbours",
                kind
            );
        }
    }
}
