//! The wire-stable session protocol shared by the workspace service, the
//! TCP server, and the client crate.
//!
//! The paper's architecture (and "The Future of Spreadsheets in the Big
//! Data Era") separates thin presentational clients from a scalable
//! storage backend; this crate is the boundary between the two halves of
//! that split. Everything here is *plain data* — no engine types, no
//! locks, no handles — encoded with the same bounds-checked
//! length-prefixed codec ([`dataspread_relstore::codec`]) every on-disk
//! format in the workspace already uses, so a hostile or truncated byte
//! stream surfaces as a clean error, never a panic.
//!
//! Four layers:
//!
//! * [`types`] — the session vocabulary: [`Edit`], [`EditReceipt`],
//!   [`WireError`] (stable numeric error codes in [`codes`]),
//!   [`CheckpointSummary`], and the unified per-sheet stats payload
//!   [`SheetStats`] (field-tagged encoding: unknown fields from a newer
//!   peer are skipped, so the stats frame can grow without a protocol
//!   bump).
//! * [`metrics`] — the canonical validated codec for whole-workspace
//!   [`RegistrySnapshot`] frames served by [`Request::Metrics`].
//! * [`patch`] — [`WindowPatch`], the compact positional-window response:
//!   typed value runs plus sparse formula/error overlays instead of one
//!   boxed [`dataspread_grid::Cell`] clone per filled cell. Used both
//!   in-process (`Session::fetch_window` returns it directly) and on the
//!   wire (it encodes as-is — the server never re-shapes a window).
//! * [`wire`] — [`Request`] / [`Response`] envelopes, request-id tagging
//!   for multiplexing many logical sessions over one connection, and
//!   length-prefixed framing ([`write_frame`] / [`read_frame`]).

pub mod metrics;
pub mod patch;
pub mod types;
pub mod wire;

pub use metrics::{decode_metrics, encode_metrics, MAX_METRIC_ENTRIES};
pub use patch::{PatchBuilder, WindowPatch};
pub use types::{codes, CheckpointSummary, Edit, EditReceipt, SheetStats, WireError, WireStats};
pub use wire::{read_frame, write_frame, Request, Response, MAX_FRAME, PROTOCOL_VERSION};

// Re-export the observability vocabulary the protocol speaks, so
// downstream crates (workspace, server, client) name one source of truth.
pub use dataspread_obs::{
    Event, Health, HistogramSnapshot, RegistrySnapshot, SheetHealth, HISTOGRAM_BUCKETS,
};
