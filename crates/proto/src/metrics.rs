//! Wire codec for [`RegistrySnapshot`] — the whole-workspace metrics
//! payload served by `Request::Metrics`.
//!
//! The encoding is canonical and strictly validated on decode, the same
//! posture as [`WindowPatch`](crate::WindowPatch): metric keys must be
//! strictly sorted (the registry snapshots from a `BTreeMap`, so a
//! compliant encoder always produces sorted keys), histogram bucket
//! arrays must be exactly [`HISTOGRAM_BUCKETS`] long with a `max` field
//! that lands in the highest occupied bucket, and every count is bounded
//! before any allocation. A truncated or bit-flipped frame surfaces as a
//! clean [`StoreError::Corrupt`] — never a panic, never a silently wrong
//! snapshot that validates.

use dataspread_obs::{
    Event, Health, HistogramSnapshot, RegistrySnapshot, SheetHealth, HISTOGRAM_BUCKETS,
};
use dataspread_relstore::codec::{corrupt, put_str, put_u32, put_u64, put_u8, Reader};
use dataspread_relstore::StoreError;

use crate::types::{health_from_u8, health_to_u8};

/// Upper bound on entries in any one section (counters, gauges,
/// histograms, events, sheets) of a metrics frame. Generous — a real
/// workspace produces tens of series per sheet — but low enough that a
/// corrupt count cannot drive a multi-gigabyte allocation.
pub const MAX_METRIC_ENTRIES: u32 = 1 << 20;

fn check_count(what: &str, n: u32) -> Result<usize, StoreError> {
    if n > MAX_METRIC_ENTRIES {
        return Err(corrupt(format!("metrics {what} count {n} too large")));
    }
    Ok(n as usize)
}

fn check_sorted(what: &str, prev: Option<&str>, key: &str) -> Result<(), StoreError> {
    if let Some(p) = prev {
        if p >= key {
            return Err(corrupt(format!(
                "metrics {what} keys not strictly sorted: {p:?} then {key:?}"
            )));
        }
    }
    Ok(())
}

fn encode_histogram(out: &mut Vec<u8>, h: &HistogramSnapshot) {
    debug_assert_eq!(h.buckets.len(), HISTOGRAM_BUCKETS);
    for &b in &h.buckets {
        put_u64(out, b);
    }
    put_u64(out, h.sum);
    put_u64(out, h.max);
}

fn decode_histogram(r: &mut Reader<'_>) -> Result<HistogramSnapshot, StoreError> {
    let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
    for b in &mut buckets {
        *b = r.u64()?;
    }
    let sum = r.u64()?;
    let max = r.u64()?;
    // Canonical-form check: `max` must fall in the highest occupied
    // bucket (bucket 0 holds exact zeros; bucket i holds
    // [2^(i-1), 2^i - 1]). An empty histogram has sum == max == 0.
    let highest = buckets.iter().rposition(|&b| b != 0);
    match highest {
        None => {
            if sum != 0 || max != 0 {
                return Err(corrupt("empty histogram with non-zero sum/max"));
            }
        }
        Some(i) => {
            let max_bucket = (u64::BITS - max.leading_zeros()) as usize;
            if max_bucket != i {
                return Err(corrupt(format!(
                    "histogram max {max} lands in bucket {max_bucket}, highest occupied is {i}"
                )));
            }
        }
    }
    Ok(HistogramSnapshot { buckets, sum, max })
}

fn encode_event(out: &mut Vec<u8>, e: &Event) {
    put_u64(out, e.ts_ms);
    put_str(out, &e.kind);
    put_str(out, &e.sheet);
    put_str(out, &e.op);
    put_u64(out, e.duration_ns);
    put_u64(out, e.ticket);
    put_str(out, &e.outcome);
}

fn decode_event(r: &mut Reader<'_>) -> Result<Event, StoreError> {
    Ok(Event {
        ts_ms: r.u64()?,
        kind: r.str()?,
        sheet: r.str()?,
        op: r.str()?,
        duration_ns: r.u64()?,
        ticket: r.u64()?,
        outcome: r.str()?,
    })
}

fn encode_sheet_health(out: &mut Vec<u8>, s: &SheetHealth) {
    put_str(out, &s.sheet);
    put_u8(out, health_to_u8(s.health));
    match &s.cause {
        Some(cause) => {
            put_u8(out, 1);
            put_str(out, cause);
        }
        None => put_u8(out, 0),
    }
    match s.since_ms {
        Some(ms) => {
            put_u8(out, 1);
            put_u64(out, ms);
        }
        None => put_u8(out, 0),
    }
}

fn decode_sheet_health(r: &mut Reader<'_>) -> Result<SheetHealth, StoreError> {
    let sheet = r.str()?;
    let health = health_from_u8(r.u8()?)?;
    let cause = match r.u8()? {
        0 => None,
        1 => Some(r.str()?),
        t => return Err(corrupt(format!("bad option tag {t} for degrade cause"))),
    };
    let since_ms = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        t => return Err(corrupt(format!("bad option tag {t} for degrade time"))),
    };
    if health == Health::Healthy && (cause.is_some() || since_ms.is_some()) {
        return Err(corrupt(format!(
            "healthy sheet {sheet:?} carries degrade cause/time"
        )));
    }
    Ok(SheetHealth {
        sheet,
        health,
        cause,
        since_ms,
    })
}

/// Encode a whole registry snapshot. The caller is expected to pass a
/// snapshot straight from `MetricsRegistry::snapshot()` (sorted keys,
/// canonical histograms); `decode_metrics` rejects anything else.
pub fn encode_metrics(snap: &RegistrySnapshot, out: &mut Vec<u8>) {
    put_u32(out, snap.counters.len() as u32);
    for (key, v) in &snap.counters {
        put_str(out, key);
        put_u64(out, *v);
    }
    put_u32(out, snap.gauges.len() as u32);
    for (key, v) in &snap.gauges {
        put_str(out, key);
        put_u64(out, *v as u64);
    }
    put_u32(out, snap.histograms.len() as u32);
    for (key, h) in &snap.histograms {
        put_str(out, key);
        encode_histogram(out, h);
    }
    put_u32(out, snap.events.len() as u32);
    for e in &snap.events {
        encode_event(out, e);
    }
    put_u64(out, snap.events_dropped);
    put_u32(out, snap.sheets.len() as u32);
    for s in &snap.sheets {
        encode_sheet_health(out, s);
    }
}

/// Decode and validate a registry snapshot. Strict: sorted-key order,
/// exact bucket counts, plausible histogram `max`, bounded section
/// sizes — a flipped bit either fails here or produces bytes that no
/// longer re-encode identically (covered by the property tests).
pub fn decode_metrics(r: &mut Reader<'_>) -> Result<RegistrySnapshot, StoreError> {
    let n = check_count("counter", r.u32()?)?;
    let mut counters = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let key = r.str()?;
        check_sorted(
            "counter",
            counters.last().map(|(k, _): &(String, u64)| k.as_str()),
            &key,
        )?;
        let v = r.u64()?;
        counters.push((key, v));
    }
    let n = check_count("gauge", r.u32()?)?;
    let mut gauges = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let key = r.str()?;
        check_sorted(
            "gauge",
            gauges.last().map(|(k, _): &(String, i64)| k.as_str()),
            &key,
        )?;
        let v = r.u64()? as i64;
        gauges.push((key, v));
    }
    let n = check_count("histogram", r.u32()?)?;
    let mut histograms = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let key = r.str()?;
        check_sorted(
            "histogram",
            histograms
                .last()
                .map(|(k, _): &(String, HistogramSnapshot)| k.as_str()),
            &key,
        )?;
        let h = decode_histogram(r)?;
        histograms.push((key, h));
    }
    let n = check_count("event", r.u32()?)?;
    let mut events = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        events.push(decode_event(r)?);
    }
    let events_dropped = r.u64()?;
    let n = check_count("sheet", r.u32()?)?;
    let mut sheets: Vec<SheetHealth> = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let s = decode_sheet_health(r)?;
        check_sorted("sheet", sheets.last().map(|p| p.sheet.as_str()), &s.sheet)?;
        sheets.push(s);
    }
    Ok(RegistrySnapshot {
        counters,
        gauges,
        histograms,
        events,
        events_dropped,
        sheets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram_of(samples: &[u64]) -> HistogramSnapshot {
        let h = dataspread_obs::Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h.snapshot()
    }

    fn sample_snapshot() -> RegistrySnapshot {
        RegistrySnapshot {
            counters: vec![
                ("wal_fsyncs{sheet=\"a\"}".into(), 42),
                ("wal_fsyncs{sheet=\"b\"}".into(), 7),
            ],
            gauges: vec![("in_flight".into(), -3), ("resident_bytes".into(), 1 << 30)],
            histograms: vec![
                (
                    "apply_edit_ns{sheet=\"a\"}".into(),
                    histogram_of(&[0, 1, 900, 1 << 40]),
                ),
                ("fsync_ns".into(), histogram_of(&[5000, 5001, 123_456])),
            ],
            events: vec![Event {
                ts_ms: 1_700_000_000_000,
                kind: "slow_op".into(),
                sheet: "a".into(),
                op: "apply_edit".into(),
                duration_ns: 55_000_000,
                ticket: 9,
                outcome: "ok".into(),
            }],
            events_dropped: 2,
            sheets: vec![
                SheetHealth {
                    sheet: "a".into(),
                    health: Health::Degraded,
                    cause: Some("fsync failed: Input/output error".into()),
                    since_ms: Some(1_700_000_000_123),
                },
                SheetHealth {
                    sheet: "b".into(),
                    health: Health::Healthy,
                    cause: None,
                    since_ms: None,
                },
            ],
        }
    }

    #[test]
    fn snapshot_roundtrip() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        encode_metrics(&snap, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_metrics(&mut r).unwrap();
        r.expect_done("metrics").unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let snap = RegistrySnapshot::default();
        let mut buf = Vec::new();
        encode_metrics(&snap, &mut buf);
        assert_eq!(decode_metrics(&mut Reader::new(&buf)).unwrap(), snap);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        encode_metrics(&snap, &mut buf);
        for len in 0..buf.len() {
            let mut r = Reader::new(&buf[..len]);
            let res = decode_metrics(&mut r).and_then(|s| {
                r.expect_done("metrics")?;
                Ok(s)
            });
            assert!(res.is_err(), "truncation to {len} bytes decoded");
        }
    }

    #[test]
    fn unsorted_keys_are_rejected() {
        let mut snap = sample_snapshot();
        snap.counters.swap(0, 1);
        let mut buf = Vec::new();
        encode_metrics(&snap, &mut buf);
        assert!(decode_metrics(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn implausible_histogram_max_is_rejected() {
        let mut snap = sample_snapshot();
        // Claim a max far above the highest occupied bucket.
        snap.histograms[0].1.max = u64::MAX;
        let mut buf = Vec::new();
        encode_metrics(&snap, &mut buf);
        assert!(decode_metrics(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn healthy_sheet_with_cause_is_rejected() {
        let mut snap = sample_snapshot();
        snap.sheets[1].cause = Some("ghost".into());
        let mut buf = Vec::new();
        encode_metrics(&snap, &mut buf);
        assert!(decode_metrics(&mut Reader::new(&buf)).is_err());
    }
}
