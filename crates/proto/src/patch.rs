//! Compact positional-window responses.
//!
//! PR 5 shipped `fetch_window` returning `Vec<(CellAddr, Cell)>` — one
//! 8-byte address plus a boxed [`Cell`] clone (value enum + optional
//! formula `String`) per filled cell, whatever the window looked like. A
//! [`WindowPatch`] carries the same information in the shape windows
//! actually have:
//!
//! * **Typed value runs.** Consecutive filled cells (row-major within the
//!   window) of the same scalar type collapse into one run — a dense
//!   imported table encodes as a handful of `f64` arrays instead of N
//!   tagged enums, and a constant-filled stretch (the fill-down pattern)
//!   collapses further into a single repeat run.
//! * **Sparse overlays.** Formula sources and error values are the
//!   exception, not the rule, so they ride in sparse `(index, payload)`
//!   overlays on top of the runs instead of widening every cell.
//!
//! The same struct is the in-process return type of
//! `Session::fetch_window` *and* the wire encoding of a window response —
//! the server never re-shapes a window, it frames these bytes as-is.

use dataspread_grid::{Cell, CellAddr, CellError, CellValue, Rect};
use dataspread_relstore::codec::{corrupt, put_f64, put_str, put_u32, put_u64, put_u8, Reader};
use dataspread_relstore::StoreError;

use crate::types::{error_from_u8, error_to_u8, put_rect, read_rect};

/// Identical consecutive numbers collapse into a repeat run once a
/// stretch reaches this length (below it, the plain array is smaller or
/// within a few bytes of it).
const REPEAT_MIN: usize = 16;

/// One run of same-typed values starting at a linear (row-major) index
/// within the window.
#[derive(Debug, Clone, PartialEq)]
enum RunData {
    Numbers(Vec<f64>),
    Texts(Vec<String>),
    Bools(Vec<bool>),
    /// `n` copies of the same number (fill-down constants).
    RepeatNumber {
        n: u32,
        value: f64,
    },
    /// `n` copies of the same text (categorical columns, fill-down labels).
    RepeatText {
        n: u32,
        value: String,
    },
}

impl RunData {
    fn len(&self) -> u64 {
        match self {
            RunData::Numbers(v) => v.len() as u64,
            RunData::Texts(v) => v.len() as u64,
            RunData::Bools(v) => v.len() as u64,
            RunData::RepeatNumber { n, .. } | RunData::RepeatText { n, .. } => u64::from(*n),
        }
    }

    fn value_at(&self, offset: u64) -> CellValue {
        match self {
            RunData::Numbers(v) => CellValue::Number(v[offset as usize]),
            RunData::Texts(v) => CellValue::Text(v[offset as usize].clone()),
            RunData::Bools(v) => CellValue::Bool(v[offset as usize]),
            RunData::RepeatNumber { value, .. } => CellValue::Number(*value),
            RunData::RepeatText { value, .. } => CellValue::Text(value.clone()),
        }
    }
}

/// A compact window of cells: typed value runs plus sparse formula and
/// error overlays, addressed by row-major linear index within [`rect`].
///
/// [`rect`]: WindowPatch::rect
#[derive(Debug, Clone, PartialEq)]
pub struct WindowPatch {
    rect: Rect,
    /// Sorted by start index; runs never overlap.
    runs: Vec<(u64, RunData)>,
    /// Sorted by index; disjoint from `runs` (an error *is* the cell's
    /// value).
    errors: Vec<(u64, CellError)>,
    /// Sorted by index; may coincide with a run/error entry (a formula
    /// cell has both a source and a computed value).
    formulas: Vec<(u64, String)>,
}

impl WindowPatch {
    /// Build a patch from the engine's sorted `(addr, cell)` window scan.
    /// Cells outside `rect` are ignored (defensive — `get_cells` never
    /// produces them); blank cells contribute nothing.
    pub fn from_cells(rect: Rect, mut cells: Vec<(CellAddr, Cell)>) -> WindowPatch {
        cells.sort_unstable_by_key(|(a, _)| *a);
        let width = u64::from(rect.c2 - rect.c1) + 1;
        let mut patch = WindowPatch {
            rect,
            runs: Vec::new(),
            errors: Vec::new(),
            formulas: Vec::new(),
        };
        for (addr, cell) in cells {
            if addr.row < rect.r1 || addr.row > rect.r2 || addr.col < rect.c1 || addr.col > rect.c2
            {
                continue;
            }
            let idx = u64::from(addr.row - rect.r1) * width + u64::from(addr.col - rect.c1);
            if let Some(src) = cell.formula {
                patch.formulas.push((idx, src));
            }
            match cell.value {
                CellValue::Empty => {}
                CellValue::Error(e) => patch.errors.push((idx, e)),
                CellValue::Number(n) => patch.push_number(idx, n),
                CellValue::Text(s) => patch.push_scalar(idx, RunData::Texts(vec![s])),
                CellValue::Bool(b) => patch.push_scalar(idx, RunData::Bools(vec![b])),
            }
        }
        patch.compact_repeats();
        patch
    }

    /// Append a number at `idx`, extending the previous run when it is
    /// numeric and ends exactly at `idx`.
    fn push_number(&mut self, idx: u64, n: f64) {
        if let Some((start, RunData::Numbers(v))) = self.runs.last_mut() {
            if *start + v.len() as u64 == idx {
                v.push(n);
                return;
            }
        }
        self.runs.push((idx, RunData::Numbers(vec![n])));
    }

    /// Append a one-element run at `idx`, merging with a contiguous
    /// same-typed predecessor.
    fn push_scalar(&mut self, idx: u64, data: RunData) {
        match (self.runs.last_mut(), data) {
            (Some((start, RunData::Texts(v))), RunData::Texts(mut one))
                if *start + v.len() as u64 == idx =>
            {
                v.push(one.pop().expect("one text"));
            }
            (Some((start, RunData::Bools(v))), RunData::Bools(mut one))
                if *start + v.len() as u64 == idx =>
            {
                v.push(one.pop().expect("one bool"));
            }
            (_, data) => self.runs.push((idx, data)),
        }
    }

    /// Split stretches of ≥ [`REPEAT_MIN`] identical consecutive numbers
    /// (compared by bits) or texts out of plain runs into repeat runs.
    fn compact_repeats(&mut self) {
        let mut out: Vec<(u64, RunData)> = Vec::with_capacity(self.runs.len());
        for (start, data) in self.runs.drain(..) {
            match data {
                RunData::Numbers(v) => split_repeats(
                    start,
                    v,
                    &mut out,
                    |a, b| a.to_bits() == b.to_bits(),
                    |n, value| RunData::RepeatNumber { n, value },
                    RunData::Numbers,
                ),
                RunData::Texts(v) => split_repeats(
                    start,
                    v,
                    &mut out,
                    |a, b| a == b,
                    |n, value| RunData::RepeatText { n, value },
                    RunData::Texts,
                ),
                other => out.push((start, other)),
            }
        }
        self.runs = out;
    }

    /// The window this patch covers.
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Number of value runs (observability for benches/tests).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of filled cells the patch carries.
    pub fn filled_count(&self) -> usize {
        let mut n: u64 =
            self.runs.iter().map(|(_, d)| d.len()).sum::<u64>() + self.errors.len() as u64;
        // A formula whose computed value is blank has no run/error entry.
        n += self
            .formulas
            .iter()
            .filter(|(idx, _)| self.run_value(*idx).is_none() && !self.has_error(*idx))
            .count() as u64;
        n as usize
    }

    /// True when the patch carries no cells at all.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty() && self.errors.is_empty() && self.formulas.is_empty()
    }

    fn width(&self) -> u64 {
        u64::from(self.rect.c2 - self.rect.c1) + 1
    }

    fn area(&self) -> u64 {
        (u64::from(self.rect.r2 - self.rect.r1) + 1) * self.width()
    }

    fn index_of(&self, addr: CellAddr) -> Option<u64> {
        if addr.row < self.rect.r1
            || addr.row > self.rect.r2
            || addr.col < self.rect.c1
            || addr.col > self.rect.c2
        {
            return None;
        }
        Some(u64::from(addr.row - self.rect.r1) * self.width() + u64::from(addr.col - self.rect.c1))
    }

    fn addr_of(&self, idx: u64) -> CellAddr {
        CellAddr::new(
            self.rect.r1 + (idx / self.width()) as u32,
            self.rect.c1 + (idx % self.width()) as u32,
        )
    }

    /// The run-borne value at linear index `idx`, if a run covers it.
    fn run_value(&self, idx: u64) -> Option<CellValue> {
        let i = match self.runs.binary_search_by_key(&idx, |(s, _)| *s) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let (start, data) = &self.runs[i];
        (idx < start + data.len()).then(|| data.value_at(idx - start))
    }

    fn has_error(&self, idx: u64) -> bool {
        self.errors.binary_search_by_key(&idx, |(i, _)| *i).is_ok()
    }

    /// The cell at `addr`, or `None` for blank / out-of-window addresses.
    pub fn cell_at(&self, addr: CellAddr) -> Option<Cell> {
        let idx = self.index_of(addr)?;
        let formula = self
            .formulas
            .binary_search_by_key(&idx, |(i, _)| *i)
            .ok()
            .map(|i| self.formulas[i].1.clone());
        let value = if let Ok(i) = self.errors.binary_search_by_key(&idx, |(i, _)| *i) {
            Some(CellValue::Error(self.errors[i].1))
        } else {
            self.run_value(idx)
        };
        match (value, formula) {
            (None, None) => None,
            (value, formula) => Some(Cell {
                value: value.unwrap_or_default(),
                formula,
            }),
        }
    }

    /// Expand back into the sorted `(addr, cell)` form (tests, exports,
    /// UI adapters that want one cell at a time).
    pub fn cells(&self) -> Vec<(CellAddr, Cell)> {
        let mut map: std::collections::BTreeMap<u64, Cell> = std::collections::BTreeMap::new();
        for (start, data) in &self.runs {
            for off in 0..data.len() {
                map.insert(
                    start + off,
                    Cell {
                        value: data.value_at(off),
                        formula: None,
                    },
                );
            }
        }
        for (idx, e) in &self.errors {
            map.entry(*idx).or_default().value = CellValue::Error(*e);
        }
        for (idx, src) in &self.formulas {
            map.entry(*idx).or_default().formula = Some(src.clone());
        }
        map.into_iter()
            .map(|(idx, cell)| (self.addr_of(idx), cell))
            .collect()
    }

    /// Serialize with the shared workspace codec.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_rect(out, self.rect);
        put_u32(out, self.runs.len() as u32);
        for (start, data) in &self.runs {
            put_u64(out, *start);
            match data {
                RunData::Numbers(v) => {
                    put_u8(out, 0);
                    put_u32(out, v.len() as u32);
                    for n in v {
                        put_f64(out, *n);
                    }
                }
                RunData::Texts(v) => {
                    put_u8(out, 1);
                    put_u32(out, v.len() as u32);
                    for s in v {
                        put_str(out, s);
                    }
                }
                RunData::Bools(v) => {
                    put_u8(out, 2);
                    put_u32(out, v.len() as u32);
                    for b in v {
                        put_u8(out, u8::from(*b));
                    }
                }
                RunData::RepeatNumber { n, value } => {
                    put_u8(out, 3);
                    put_u32(out, *n);
                    put_f64(out, *value);
                }
                RunData::RepeatText { n, value } => {
                    put_u8(out, 4);
                    put_u32(out, *n);
                    put_str(out, value);
                }
            }
        }
        put_u32(out, self.errors.len() as u32);
        for (idx, e) in &self.errors {
            put_u64(out, *idx);
            put_u8(out, error_to_u8(*e));
        }
        put_u32(out, self.formulas.len() as u32);
        for (idx, src) in &self.formulas {
            put_u64(out, *idx);
            put_str(out, src);
        }
    }

    /// Decode and validate: runs must be sorted, non-overlapping, and
    /// in-bounds; overlays sorted and in-bounds. Violations surface as
    /// [`StoreError::Corrupt`].
    pub fn decode(r: &mut Reader<'_>) -> Result<WindowPatch, StoreError> {
        let rect = read_rect(r)?;
        let mut patch = WindowPatch {
            rect,
            runs: Vec::new(),
            errors: Vec::new(),
            formulas: Vec::new(),
        };
        let area = patch.area();
        let run_count = r.u32()?;
        let mut horizon = 0u64; // first index not yet covered
        for _ in 0..run_count {
            let start = r.u64()?;
            let data = match r.u8()? {
                0 => {
                    let n = r.u32()? as usize;
                    let mut v = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        v.push(r.f64()?);
                    }
                    RunData::Numbers(v)
                }
                1 => {
                    let n = r.u32()? as usize;
                    let mut v = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        v.push(r.str()?);
                    }
                    RunData::Texts(v)
                }
                2 => {
                    let n = r.u32()? as usize;
                    let mut v = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        v.push(r.u8()? != 0);
                    }
                    RunData::Bools(v)
                }
                3 => RunData::RepeatNumber {
                    n: r.u32()?,
                    value: r.f64()?,
                },
                4 => RunData::RepeatText {
                    n: r.u32()?,
                    value: r.str()?,
                },
                t => return Err(corrupt(format!("unknown window-run tag {t}"))),
            };
            let len = data.len();
            if len == 0 {
                return Err(corrupt("empty window run"));
            }
            if start < horizon {
                return Err(corrupt("window runs out of order or overlapping"));
            }
            let end = start
                .checked_add(len)
                .ok_or_else(|| corrupt("window run overflows"))?;
            if end > area {
                return Err(corrupt("window run exceeds window area"));
            }
            horizon = end;
            patch.runs.push((start, data));
        }
        let err_count = r.u32()?;
        let mut last = None;
        for _ in 0..err_count {
            let idx = r.u64()?;
            if idx >= area || last.is_some_and(|l| idx <= l) {
                return Err(corrupt(
                    "window error overlay out of order or out of bounds",
                ));
            }
            last = Some(idx);
            patch.errors.push((idx, error_from_u8(r.u8()?)?));
        }
        let formula_count = r.u32()?;
        let mut last = None;
        for _ in 0..formula_count {
            let idx = r.u64()?;
            if idx >= area || last.is_some_and(|l| idx <= l) {
                return Err(corrupt(
                    "window formula overlay out of order or out of bounds",
                ));
            }
            last = Some(idx);
            patch.formulas.push((idx, r.str()?));
        }
        Ok(patch)
    }
}

/// Split stretches of ≥ [`REPEAT_MIN`] equal consecutive values out of one
/// plain run into repeat runs, leaving shorter stretches in plain runs.
fn split_repeats<T: Clone>(
    start: u64,
    v: Vec<T>,
    out: &mut Vec<(u64, RunData)>,
    same: impl Fn(&T, &T) -> bool,
    repeat: impl Fn(u32, T) -> RunData,
    plain: impl Fn(Vec<T>) -> RunData,
) {
    let mut lo = 0usize;
    while lo < v.len() {
        let mut hi = lo + 1;
        while hi < v.len() && same(&v[hi], &v[lo]) {
            hi += 1;
        }
        if hi - lo >= REPEAT_MIN {
            out.push((start + lo as u64, repeat((hi - lo) as u32, v[lo].clone())));
            lo = hi;
        } else {
            // Grow a plain run until the next long repeat stretch.
            let run_lo = lo;
            while lo < v.len() {
                let mut h = lo + 1;
                while h < v.len() && same(&v[h], &v[lo]) {
                    h += 1;
                }
                if h - lo >= REPEAT_MIN {
                    break;
                }
                lo = h;
            }
            out.push((start + run_lo as u64, plain(v[run_lo..lo].to_vec())));
        }
    }
}

/// Streaming [`WindowPatch`] construction for storage layers that scan a
/// window value-by-value (the engine's columnar regions walk their RLE
/// runs in row-major order) — no intermediate `(CellAddr, Cell)` vector,
/// no per-cell `Cell` allocation, no re-sort.
///
/// Push exactly one call per window position, row-major: the builder
/// tracks the linear index itself. Pushes past the window area are
/// ignored (mirrors `from_cells` dropping out-of-rect cells).
#[derive(Debug)]
pub struct PatchBuilder {
    patch: WindowPatch,
    idx: u64,
    area: u64,
}

impl PatchBuilder {
    pub fn new(rect: Rect) -> PatchBuilder {
        let patch = WindowPatch {
            rect,
            runs: Vec::new(),
            errors: Vec::new(),
            formulas: Vec::new(),
        };
        let area = patch.area();
        PatchBuilder {
            patch,
            idx: 0,
            area,
        }
    }

    /// Record `formula` (if any) at the current position, then advance.
    fn step(&mut self, formula: Option<&str>) {
        if let Some(src) = formula {
            self.patch.formulas.push((self.idx, src.to_string()));
        }
        self.idx += 1;
    }

    fn in_bounds(&self) -> bool {
        self.idx < self.area
    }

    pub fn push_empty(&mut self, formula: Option<&str>) {
        if self.in_bounds() {
            self.step(formula);
        }
    }

    pub fn push_number(&mut self, n: f64, formula: Option<&str>) {
        if self.in_bounds() {
            let idx = self.idx;
            self.patch.push_number(idx, n);
            self.step(formula);
        }
    }

    pub fn push_bool(&mut self, b: bool, formula: Option<&str>) {
        if self.in_bounds() {
            let idx = self.idx;
            self.patch.push_scalar(idx, RunData::Bools(vec![b]));
            self.step(formula);
        }
    }

    pub fn push_text(&mut self, s: &str, formula: Option<&str>) {
        if self.in_bounds() {
            let idx = self.idx;
            self.patch
                .push_scalar(idx, RunData::Texts(vec![s.to_string()]));
            self.step(formula);
        }
    }

    pub fn push_error(&mut self, e: CellError, formula: Option<&str>) {
        if self.in_bounds() {
            self.patch.errors.push((self.idx, e));
            self.step(formula);
        }
    }

    /// Finish the patch (collapses repeat stretches). The result is
    /// identical to `from_cells` over the equivalent cell list.
    pub fn finish(mut self) -> WindowPatch {
        self.patch.compact_repeats();
        self.patch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell_num(n: f64) -> Cell {
        Cell::value(n)
    }

    fn roundtrip(patch: &WindowPatch) -> WindowPatch {
        let mut buf = Vec::new();
        patch.encode(&mut buf);
        let mut r = Reader::new(&buf);
        let decoded = WindowPatch::decode(&mut r).unwrap();
        r.expect_done("patch").unwrap();
        decoded
    }

    #[test]
    fn empty_window() {
        let patch = WindowPatch::from_cells(Rect::new(0, 0, 9, 9), Vec::new());
        assert!(patch.is_empty());
        assert_eq!(patch.filled_count(), 0);
        assert_eq!(patch.cells(), Vec::new());
        assert_eq!(roundtrip(&patch), patch);
    }

    #[test]
    fn dense_numbers_collapse_into_one_run() {
        let rect = Rect::new(2, 1, 4, 3);
        let mut cells = Vec::new();
        for r in 2..=4u32 {
            for c in 1..=3u32 {
                cells.push((CellAddr::new(r, c), cell_num((r * 10 + c) as f64)));
            }
        }
        let patch = WindowPatch::from_cells(rect, cells.clone());
        assert_eq!(patch.run_count(), 1, "contiguous same-typed cells = 1 run");
        assert_eq!(patch.filled_count(), 9);
        assert_eq!(patch.cells(), cells);
        assert_eq!(roundtrip(&patch), patch);
    }

    #[test]
    fn mixed_types_and_gaps_split_runs() {
        let rect = Rect::new(0, 0, 1, 4);
        let cells = vec![
            (CellAddr::new(0, 0), Cell::value(1.0)),
            (CellAddr::new(0, 1), Cell::value("x")),
            (CellAddr::new(0, 2), Cell::value(true)),
            // gap at (0,3)
            (CellAddr::new(0, 4), Cell::value(2.0)),
            (CellAddr::new(1, 0), Cell::value(3.0)),
        ];
        let patch = WindowPatch::from_cells(rect, cells.clone());
        // number | text | bool | number(2.0 .. wraps row, still contiguous
        // linearly? idx 4 then 5 — contiguous, same type → one run)
        assert_eq!(patch.run_count(), 4);
        assert_eq!(patch.cells(), cells);
        assert_eq!(patch.filled_count(), 5);
        assert_eq!(roundtrip(&patch), patch);
    }

    #[test]
    fn formula_and_error_overlays() {
        let rect = Rect::new(0, 0, 0, 3);
        let cells = vec![
            (CellAddr::new(0, 0), Cell::value(2.0)),
            (CellAddr::new(0, 1), Cell::formula("A1*2").with_value(4.0)),
            (
                CellAddr::new(0, 2),
                Cell {
                    value: CellValue::Error(CellError::Div0),
                    formula: Some("1/0".to_string()),
                },
            ),
            (CellAddr::new(0, 3), Cell::formula("ZZ1")),
        ];
        let patch = WindowPatch::from_cells(rect, cells.clone());
        assert_eq!(patch.filled_count(), 4);
        assert_eq!(patch.cells(), cells);
        assert_eq!(
            patch.cell_at(CellAddr::new(0, 1)).unwrap(),
            Cell::formula("A1*2").with_value(4.0)
        );
        assert_eq!(
            patch.cell_at(CellAddr::new(0, 2)).unwrap().value,
            CellValue::Error(CellError::Div0)
        );
        assert_eq!(patch.cell_at(CellAddr::new(5, 5)), None);
        assert_eq!(
            patch.cell_at(CellAddr::new(0, 3)).unwrap().value,
            CellValue::Empty
        );
        assert_eq!(roundtrip(&patch), patch);
    }

    #[test]
    fn constant_stretches_become_repeat_runs() {
        let rect = Rect::new(0, 0, 0, 99);
        let mut cells = Vec::new();
        for c in 0..40u32 {
            cells.push((CellAddr::new(0, c), cell_num(7.0)));
        }
        for c in 40..50u32 {
            cells.push((CellAddr::new(0, c), cell_num(c as f64)));
        }
        let patch = WindowPatch::from_cells(rect, cells.clone());
        assert_eq!(
            patch.run_count(),
            2,
            "40 identical numbers collapse to one repeat run"
        );
        let mut buf = Vec::new();
        patch.encode(&mut buf);
        assert!(
            buf.len() < 40 * 8,
            "repeat encoding beats 40 raw f64s ({} bytes)",
            buf.len()
        );
        assert_eq!(patch.cells(), cells);
        assert_eq!(roundtrip(&patch), patch);
    }

    #[test]
    fn wire_size_beats_naive_cells_by_a_wide_margin_on_dense_windows() {
        // 50x8 dense numeric window: the naive form is ≥ 16 bytes of
        // address + tag overhead per cell before the payload.
        let rect = Rect::new(0, 0, 49, 7);
        let mut cells = Vec::new();
        for r in 0..50u32 {
            for c in 0..8u32 {
                cells.push((CellAddr::new(r, c), cell_num((r + c) as f64)));
            }
        }
        let patch = WindowPatch::from_cells(rect, cells);
        let mut buf = Vec::new();
        patch.encode(&mut buf);
        let naive = 400 * (8 + 1 + 8 + 1); // addr + value tag + f64 + formula tag
        assert!(
            buf.len() * 2 < naive,
            "patch bytes {} vs naive {naive}",
            buf.len()
        );
    }

    #[test]
    fn decode_rejects_malformed_patches() {
        // Overlapping runs.
        let mut buf = Vec::new();
        put_rect(&mut buf, Rect::new(0, 0, 0, 9));
        put_u32(&mut buf, 2);
        put_u64(&mut buf, 0);
        put_u8(&mut buf, 0);
        put_u32(&mut buf, 3);
        for _ in 0..3 {
            put_f64(&mut buf, 1.0);
        }
        put_u64(&mut buf, 1); // overlaps [0,3)
        put_u8(&mut buf, 0);
        put_u32(&mut buf, 1);
        put_f64(&mut buf, 2.0);
        assert!(WindowPatch::decode(&mut Reader::new(&buf)).is_err());

        // Run past the window area.
        let mut buf = Vec::new();
        put_rect(&mut buf, Rect::new(0, 0, 0, 1));
        put_u32(&mut buf, 1);
        put_u64(&mut buf, 0);
        put_u8(&mut buf, 3);
        put_u32(&mut buf, 100);
        put_f64(&mut buf, 1.0);
        assert!(WindowPatch::decode(&mut Reader::new(&buf)).is_err());

        // Truncated mid-run.
        let mut buf = Vec::new();
        put_rect(&mut buf, Rect::new(0, 0, 9, 9));
        put_u32(&mut buf, 1);
        put_u64(&mut buf, 0);
        put_u8(&mut buf, 0);
        put_u32(&mut buf, 50); // claims 50 numbers, provides none
        assert!(WindowPatch::decode(&mut Reader::new(&buf)).is_err());

        // Unknown run tag.
        let mut buf = Vec::new();
        put_rect(&mut buf, Rect::new(0, 0, 9, 9));
        put_u32(&mut buf, 1);
        put_u64(&mut buf, 0);
        put_u8(&mut buf, 9);
        assert!(WindowPatch::decode(&mut Reader::new(&buf)).is_err());

        // Error overlay out of bounds.
        let mut buf = Vec::new();
        put_rect(&mut buf, Rect::new(0, 0, 0, 0));
        put_u32(&mut buf, 0);
        put_u32(&mut buf, 1);
        put_u64(&mut buf, 5);
        put_u8(&mut buf, 0);
        assert!(WindowPatch::decode(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn constant_text_stretches_become_repeat_runs() {
        let rect = Rect::new(0, 0, 0, 59);
        let mut cells = Vec::new();
        for c in 0..40u32 {
            cells.push((CellAddr::new(0, c), Cell::value("electronics")));
        }
        for c in 40..50u32 {
            cells.push((CellAddr::new(0, c), Cell::value(format!("sku-{c}"))));
        }
        let patch = WindowPatch::from_cells(rect, cells.clone());
        assert_eq!(
            patch.run_count(),
            2,
            "40 identical texts collapse to one repeat run"
        );
        let mut buf = Vec::new();
        patch.encode(&mut buf);
        assert!(
            buf.len() < 40 * "electronics".len(),
            "repeat encoding beats 40 raw strings ({} bytes)",
            buf.len()
        );
        assert_eq!(patch.cells(), cells);
        assert_eq!(roundtrip(&patch), patch);
    }

    #[test]
    fn builder_matches_from_cells() {
        // A window with every value shape, plus long numeric and text
        // repeats, built both ways must be structurally identical.
        let rect = Rect::new(3, 2, 7, 11); // 5x10 window
        let mut cells = Vec::new();
        let mut b = PatchBuilder::new(rect);
        for idx in 0..50u32 {
            let addr = CellAddr::new(rect.r1 + idx / 10, rect.c1 + idx % 10);
            match idx {
                0..=17 => {
                    b.push_number(7.0, None);
                    cells.push((addr, Cell::value(7.0)));
                }
                18 => {
                    b.push_error(CellError::Div0, Some("1/0"));
                    cells.push((
                        addr,
                        Cell {
                            value: CellValue::Error(CellError::Div0),
                            formula: Some("1/0".to_string()),
                        },
                    ));
                }
                19 | 20 => {
                    b.push_empty(None);
                }
                21..=40 => {
                    b.push_text("apparel", None);
                    cells.push((addr, Cell::value("apparel")));
                }
                41 => {
                    b.push_bool(true, None);
                    cells.push((addr, Cell::value(true)));
                }
                42 => {
                    b.push_number(42.0, Some("SUM(A1:A2)"));
                    cells.push((
                        addr,
                        Cell {
                            value: CellValue::Number(42.0),
                            formula: Some("SUM(A1:A2)".to_string()),
                        },
                    ));
                }
                43 => {
                    b.push_empty(Some("ZZ99"));
                    cells.push((addr, Cell::formula("ZZ99")));
                }
                _ => {
                    b.push_number(idx as f64, None);
                    cells.push((addr, Cell::value(idx as f64)));
                }
            }
        }
        let built = b.finish();
        let from_cells = WindowPatch::from_cells(rect, cells);
        assert_eq!(built, from_cells);
        assert_eq!(roundtrip(&built), built);
    }

    #[test]
    fn builder_ignores_pushes_past_the_window() {
        let rect = Rect::new(0, 0, 0, 1);
        let mut b = PatchBuilder::new(rect);
        b.push_number(1.0, None);
        b.push_number(2.0, None);
        b.push_number(3.0, None); // past the 2-cell area
        let patch = b.finish();
        assert_eq!(patch.filled_count(), 2);
    }

    #[test]
    fn unsorted_input_is_normalized() {
        let rect = Rect::new(0, 0, 1, 1);
        let cells = vec![
            (CellAddr::new(1, 1), cell_num(4.0)),
            (CellAddr::new(0, 0), cell_num(1.0)),
        ];
        let patch = WindowPatch::from_cells(rect, cells);
        assert_eq!(
            patch.cells(),
            vec![
                (CellAddr::new(0, 0), cell_num(1.0)),
                (CellAddr::new(1, 1), cell_num(4.0)),
            ]
        );
    }

    #[test]
    fn out_of_rect_cells_are_dropped() {
        let rect = Rect::new(0, 0, 1, 1);
        let patch = WindowPatch::from_cells(
            rect,
            vec![
                (CellAddr::new(0, 0), cell_num(1.0)),
                (CellAddr::new(9, 9), cell_num(2.0)),
            ],
        );
        assert_eq!(patch.filled_count(), 1);
    }
}
