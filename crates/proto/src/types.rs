//! The wire vocabulary of the session API: edits, receipts, stats, and
//! the numeric error space.

use dataspread_grid::{CellError, CellValue, Rect};
use dataspread_obs::Health;
use dataspread_relstore::codec::{
    corrupt, put_f64, put_str, put_u16, put_u32, put_u64, put_u8, Reader,
};
use dataspread_relstore::StoreError;

/// One logical edit, RPC-shaped (plain data, no engine types beyond the
/// cell-value enum used by imports).
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// `updateCell(row, col, input)` — raw user input (`=…` formula,
    /// literal, `""` clear), interpreted exactly like the engine does.
    Set {
        row: u32,
        col: u32,
        input: String,
    },
    InsertRows {
        at: u32,
        n: u32,
    },
    DeleteRows {
        at: u32,
        n: u32,
    },
    InsertCols {
        at: u32,
        n: u32,
    },
    DeleteCols {
        at: u32,
        n: u32,
    },
}

impl Edit {
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Edit::Set { row, col, input } => {
                put_u8(out, 0);
                put_u32(out, *row);
                put_u32(out, *col);
                put_str(out, input);
            }
            Edit::InsertRows { at, n } => {
                put_u8(out, 1);
                put_u32(out, *at);
                put_u32(out, *n);
            }
            Edit::DeleteRows { at, n } => {
                put_u8(out, 2);
                put_u32(out, *at);
                put_u32(out, *n);
            }
            Edit::InsertCols { at, n } => {
                put_u8(out, 3);
                put_u32(out, *at);
                put_u32(out, *n);
            }
            Edit::DeleteCols { at, n } => {
                put_u8(out, 4);
                put_u32(out, *at);
                put_u32(out, *n);
            }
        }
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<Edit, StoreError> {
        Ok(match r.u8()? {
            0 => Edit::Set {
                row: r.u32()?,
                col: r.u32()?,
                input: r.str()?,
            },
            1 => Edit::InsertRows {
                at: r.u32()?,
                n: r.u32()?,
            },
            2 => Edit::DeleteRows {
                at: r.u32()?,
                n: r.u32()?,
            },
            3 => Edit::InsertCols {
                at: r.u32()?,
                n: r.u32()?,
            },
            4 => Edit::DeleteCols {
                at: r.u32()?,
                n: r.u32()?,
            },
            t => return Err(corrupt(format!("unknown edit tag {t}"))),
        })
    }
}

/// Acknowledgement for one applied edit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditReceipt {
    /// WAL commit ticket of the logged op (0 on in-memory workspaces).
    /// Tickets increase in the order edits serialized on the sheet, so
    /// they double as the edit's position in the sheet's history.
    pub ticket: u64,
    /// Whether the edit was crash-durable when `apply_edit` returned
    /// (true for every durable workspace, both commit modes).
    pub durable: bool,
}

/// The wire view of an engine `CheckpointReport` — the counters a remote
/// client can act on, shorn of engine internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckpointSummary {
    /// Pages whose bytes changed and were rewritten.
    pub pages_written: u64,
    /// Regions in the image after the checkpoint (catch-all included).
    pub regions_total: u64,
    /// Regions submitted dirty (re-serialized this checkpoint).
    pub regions_dirty: u64,
    /// Dirty regions whose bytes actually changed and were rewritten.
    pub regions_written: u64,
}

impl CheckpointSummary {
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        put_u64(out, self.pages_written);
        put_u64(out, self.regions_total);
        put_u64(out, self.regions_dirty);
        put_u64(out, self.regions_written);
    }

    pub(crate) fn decode(r: &mut Reader<'_>) -> Result<CheckpointSummary, StoreError> {
        Ok(CheckpointSummary {
            pages_written: r.u64()?,
            regions_total: r.u64()?,
            regions_dirty: r.u64()?,
            regions_written: r.u64()?,
        })
    }
}

/// Point-in-time counters and health for one sheet — the single stats
/// payload used both in-process (`Session::stats`) and over the wire
/// (`Response::Stats`).
///
/// The struct is `#[non_exhaustive]`: new PRs append fields without
/// breaking downstream matches. The encoding is field-tagged (per field:
/// a `u16` id plus a length-prefixed payload), so a decoder skips ids it
/// does not know — an old client reading a new server's stats sees the
/// fields it understands and silently drops the rest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct SheetStats {
    /// Non-empty cells in the sheet.
    pub filled_cells: u64,
    /// Hybrid storage regions (catch-all included).
    pub regions: u64,
    /// Whether the sheet is backed by a durable store (WAL + image). The
    /// persistence counters below are only meaningful when this is set.
    pub persistent: bool,
    /// Bytes in the live WAL segment chain.
    pub wal_bytes: u64,
    /// WAL segments on disk.
    pub wal_segments: u64,
    /// Ops logged since the last checkpoint (replay cost on reopen).
    pub ops_since_checkpoint: u64,
    /// Checkpoints taken since open.
    pub checkpoints: u64,
    /// Pages in the checkpoint image.
    pub image_pages: u64,
    /// Regions serialized in the checkpoint image.
    pub image_regions: u64,
    /// Bytes of region payload resident in memory.
    pub resident_bytes: u64,
    /// Pager cache hits.
    pub pager_hits: u64,
    /// Pager cache misses (page faults against the image file).
    pub pager_misses: u64,
    /// Pages evicted from the pager cache.
    pub pager_evictions: u64,
    /// Pages read from the image file.
    pub pager_pages_read: u64,
    /// Pages written to the image file.
    pub pager_pages_written: u64,
    /// Formula cell-cache hits.
    pub cache_hits: u64,
    /// Formula cell-cache misses.
    pub cache_misses: u64,
    /// Whether the sheet is serving normally or read-only degraded.
    pub health: Health,
    /// Cause of the degrade (first storage failure message), if degraded.
    pub degraded_cause: Option<String>,
    /// Unix millis when the sheet degraded, if degraded and known.
    pub degraded_since_ms: Option<u64>,
}

/// Former name of [`SheetStats`], kept so existing call sites read
/// naturally; the two are one type.
pub type WireStats = SheetStats;

/// Field ids for the [`SheetStats`] tagged encoding. Ids are wire
/// contract: never reuse, only append.
mod stat_ids {
    pub const FILLED_CELLS: u16 = 1;
    pub const REGIONS: u16 = 2;
    pub const PERSISTENT: u16 = 3;
    pub const WAL_BYTES: u16 = 4;
    pub const WAL_SEGMENTS: u16 = 5;
    pub const OPS_SINCE_CHECKPOINT: u16 = 6;
    pub const CHECKPOINTS: u16 = 7;
    pub const IMAGE_PAGES: u16 = 8;
    pub const IMAGE_REGIONS: u16 = 9;
    pub const RESIDENT_BYTES: u16 = 10;
    pub const PAGER_HITS: u16 = 11;
    pub const PAGER_MISSES: u16 = 12;
    pub const PAGER_EVICTIONS: u16 = 13;
    pub const PAGER_PAGES_READ: u16 = 14;
    pub const PAGER_PAGES_WRITTEN: u16 = 15;
    pub const HEALTH: u16 = 16;
    pub const DEGRADED_CAUSE: u16 = 17;
    pub const DEGRADED_SINCE_MS: u16 = 18;
    pub const CACHE_HITS: u16 = 19;
    pub const CACHE_MISSES: u16 = 20;
}

/// Upper bound on fields in one [`SheetStats`] frame — far above any real
/// encoding, low enough that a corrupt count cannot drive a huge loop.
const MAX_STAT_FIELDS: u32 = 1 << 12;

impl SheetStats {
    pub fn encode(&self, out: &mut Vec<u8>) {
        fn u64_payload(v: u64) -> Vec<u8> {
            let mut p = Vec::with_capacity(8);
            put_u64(&mut p, v);
            p
        }
        let mut buf = Vec::new();
        let mut count: u32 = 0;
        let mut field = |id: u16, payload: Vec<u8>| {
            put_u16(&mut buf, id);
            put_u32(&mut buf, payload.len() as u32);
            buf.extend_from_slice(&payload);
            count += 1;
        };
        field(stat_ids::FILLED_CELLS, u64_payload(self.filled_cells));
        field(stat_ids::REGIONS, u64_payload(self.regions));
        field(stat_ids::PERSISTENT, vec![u8::from(self.persistent)]);
        field(stat_ids::WAL_BYTES, u64_payload(self.wal_bytes));
        field(stat_ids::WAL_SEGMENTS, u64_payload(self.wal_segments));
        field(
            stat_ids::OPS_SINCE_CHECKPOINT,
            u64_payload(self.ops_since_checkpoint),
        );
        field(stat_ids::CHECKPOINTS, u64_payload(self.checkpoints));
        field(stat_ids::IMAGE_PAGES, u64_payload(self.image_pages));
        field(stat_ids::IMAGE_REGIONS, u64_payload(self.image_regions));
        field(stat_ids::RESIDENT_BYTES, u64_payload(self.resident_bytes));
        field(stat_ids::PAGER_HITS, u64_payload(self.pager_hits));
        field(stat_ids::PAGER_MISSES, u64_payload(self.pager_misses));
        field(stat_ids::PAGER_EVICTIONS, u64_payload(self.pager_evictions));
        field(
            stat_ids::PAGER_PAGES_READ,
            u64_payload(self.pager_pages_read),
        );
        field(
            stat_ids::PAGER_PAGES_WRITTEN,
            u64_payload(self.pager_pages_written),
        );
        field(stat_ids::CACHE_HITS, u64_payload(self.cache_hits));
        field(stat_ids::CACHE_MISSES, u64_payload(self.cache_misses));
        field(stat_ids::HEALTH, vec![health_to_u8(self.health)]);
        if let Some(cause) = &self.degraded_cause {
            let mut p = Vec::new();
            put_str(&mut p, cause);
            field(stat_ids::DEGRADED_CAUSE, p);
        }
        if let Some(ms) = self.degraded_since_ms {
            field(stat_ids::DEGRADED_SINCE_MS, u64_payload(ms));
        }
        put_u32(out, count);
        out.extend_from_slice(&buf);
    }

    pub fn decode(r: &mut Reader<'_>) -> Result<SheetStats, StoreError> {
        let count = r.u32()?;
        if count > MAX_STAT_FIELDS {
            return Err(corrupt(format!(
                "sheet-stats field count {count} too large"
            )));
        }
        let mut s = SheetStats::default();
        for _ in 0..count {
            let id = r.u16()?;
            let len = r.u32()? as usize;
            let payload = r.take(len)?;
            let mut f = Reader::new(payload);
            match id {
                stat_ids::FILLED_CELLS => s.filled_cells = f.u64()?,
                stat_ids::REGIONS => s.regions = f.u64()?,
                stat_ids::PERSISTENT => s.persistent = f.u8()? != 0,
                stat_ids::WAL_BYTES => s.wal_bytes = f.u64()?,
                stat_ids::WAL_SEGMENTS => s.wal_segments = f.u64()?,
                stat_ids::OPS_SINCE_CHECKPOINT => s.ops_since_checkpoint = f.u64()?,
                stat_ids::CHECKPOINTS => s.checkpoints = f.u64()?,
                stat_ids::IMAGE_PAGES => s.image_pages = f.u64()?,
                stat_ids::IMAGE_REGIONS => s.image_regions = f.u64()?,
                stat_ids::RESIDENT_BYTES => s.resident_bytes = f.u64()?,
                stat_ids::PAGER_HITS => s.pager_hits = f.u64()?,
                stat_ids::PAGER_MISSES => s.pager_misses = f.u64()?,
                stat_ids::PAGER_EVICTIONS => s.pager_evictions = f.u64()?,
                stat_ids::PAGER_PAGES_READ => s.pager_pages_read = f.u64()?,
                stat_ids::PAGER_PAGES_WRITTEN => s.pager_pages_written = f.u64()?,
                stat_ids::CACHE_HITS => s.cache_hits = f.u64()?,
                stat_ids::CACHE_MISSES => s.cache_misses = f.u64()?,
                stat_ids::HEALTH => s.health = health_from_u8(f.u8()?)?,
                stat_ids::DEGRADED_CAUSE => s.degraded_cause = Some(f.str()?),
                stat_ids::DEGRADED_SINCE_MS => s.degraded_since_ms = Some(f.u64()?),
                // Unknown field from a newer peer: tolerated and dropped.
                _ => continue,
            }
            f.expect_done("sheet-stats field")?;
        }
        Ok(s)
    }
}

pub(crate) fn health_to_u8(h: Health) -> u8 {
    match h {
        Health::Healthy => 0,
        Health::Degraded => 1,
    }
}

pub(crate) fn health_from_u8(b: u8) -> Result<Health, StoreError> {
    Ok(match b {
        0 => Health::Healthy,
        1 => Health::Degraded,
        t => return Err(corrupt(format!("unknown health tag {t}"))),
    })
}

/// Stable numeric codes for every error the session API can surface.
///
/// The codes are wire contract: they never change meaning, new ones are
/// only appended, and both sides treat unknown codes as opaque-but-valid
/// (`WorkspaceError::Remote` client-side). Layout: `0x000x` session-level
/// errors, `0x01xx` engine-level, `0x02xx` store-level (one code per
/// `StoreError` variant).
pub mod codes {
    /// The named sheet was never opened in this workspace.
    pub const NO_SUCH_SHEET: u16 = 1;
    /// Sheet name failed validation (`[A-Za-z0-9_-]`, ≤128 chars).
    pub const BAD_SHEET_NAME: u16 = 2;
    /// Admission control rejected the request; retry after draining
    /// in-flight work.
    pub const BUSY: u16 = 3;
    /// The peer violated the wire protocol (bad frame, bad tag, version
    /// mismatch).
    pub const PROTOCOL: u16 = 4;
    /// Transport-level I/O failure.
    pub const IO: u16 = 5;
    /// The sheet is in read-only degraded mode after a storage failure:
    /// fetches still serve from memory, but edits are refused until the
    /// server reopens the store. Retrying the same edit will keep failing;
    /// clients should surface the error and reconnect later.
    pub const DEGRADED: u16 = 6;
    /// A permanent storage failure (failed fsync / torn checkpoint)
    /// surfaced directly by the failing operation. The request that got
    /// this error was NOT made durable.
    pub const STORAGE_FAILED: u16 = 7;

    pub const ENGINE_UNSUPPORTED: u16 = 0x101;
    pub const ENGINE_BAD_LINK: u16 = 0x102;
    pub const ENGINE_FORMULA: u16 = 0x103;
    pub const ENGINE_GRID: u16 = 0x104;
    pub const ENGINE_REL: u16 = 0x105;

    pub const STORE_NO_SUCH_TABLE: u16 = 0x200;
    pub const STORE_TABLE_EXISTS: u16 = 0x201;
    pub const STORE_SCHEMA_MISMATCH: u16 = 0x202;
    pub const STORE_BAD_TUPLE_ID: u16 = 0x203;
    pub const STORE_TUPLE_TOO_LARGE: u16 = 0x204;
    pub const STORE_CORRUPT: u16 = 0x205;
    pub const STORE_NO_SUCH_COLUMN: u16 = 0x206;
    pub const STORE_LIMIT_EXCEEDED: u16 = 0x207;
    pub const STORE_IO: u16 = 0x208;
    /// [`StoreError::StorageFailed`]: the store's WAL or image can no
    /// longer prove durability; only a reopen recovers.
    pub const STORE_STORAGE_FAILED: u16 = 0x209;
}

/// An error as it travels the wire: a stable numeric code plus the
/// variant's payload string (sheet name, message, …) — not a rendered
/// display string, so the receiving side reconstructs the same error
/// instead of wrapping an opaque blob of text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    pub code: u16,
    pub detail: String,
}

impl WireError {
    pub fn new(code: u16, detail: impl Into<String>) -> WireError {
        WireError {
            code,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:#06x}] {}", self.code, self.detail)
    }
}

// --- shared primitive encodings -----------------------------------------

pub(crate) fn put_rect(out: &mut Vec<u8>, rect: Rect) {
    put_u32(out, rect.r1);
    put_u32(out, rect.c1);
    put_u32(out, rect.r2);
    put_u32(out, rect.c2);
}

pub(crate) fn read_rect(r: &mut Reader<'_>) -> Result<Rect, StoreError> {
    let (r1, c1, r2, c2) = (r.u32()?, r.u32()?, r.u32()?, r.u32()?);
    Ok(Rect::new(r1, c1, r2, c2))
}

pub(crate) fn error_to_u8(e: CellError) -> u8 {
    match e {
        CellError::Div0 => 0,
        CellError::Value => 1,
        CellError::Ref => 2,
        CellError::Name => 3,
        CellError::Na => 4,
        CellError::Num => 5,
        CellError::Circular => 6,
    }
}

pub(crate) fn error_from_u8(b: u8) -> Result<CellError, StoreError> {
    Ok(match b {
        0 => CellError::Div0,
        1 => CellError::Value,
        2 => CellError::Ref,
        3 => CellError::Name,
        4 => CellError::Na,
        5 => CellError::Num,
        6 => CellError::Circular,
        t => return Err(corrupt(format!("unknown cell-error tag {t}"))),
    })
}

pub(crate) fn put_value(out: &mut Vec<u8>, v: &CellValue) {
    match v {
        CellValue::Empty => put_u8(out, 0),
        CellValue::Number(n) => {
            put_u8(out, 1);
            put_f64(out, *n);
        }
        CellValue::Text(s) => {
            put_u8(out, 2);
            put_str(out, s);
        }
        CellValue::Bool(b) => {
            put_u8(out, 3);
            put_u8(out, u8::from(*b));
        }
        CellValue::Error(e) => {
            put_u8(out, 4);
            put_u8(out, error_to_u8(*e));
        }
    }
}

pub(crate) fn read_value(r: &mut Reader<'_>) -> Result<CellValue, StoreError> {
    Ok(match r.u8()? {
        0 => CellValue::Empty,
        1 => CellValue::Number(r.f64()?),
        2 => CellValue::Text(r.str()?),
        3 => CellValue::Bool(r.u8()? != 0),
        4 => CellValue::Error(error_from_u8(r.u8()?)?),
        t => return Err(corrupt(format!("unknown cell-value tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_roundtrip() {
        let edits = [
            Edit::Set {
                row: 3,
                col: 9,
                input: "=SUM(A1:A3)".into(),
            },
            Edit::InsertRows { at: 0, n: 5 },
            Edit::DeleteRows { at: 7, n: 1 },
            Edit::InsertCols { at: 2, n: 3 },
            Edit::DeleteCols { at: 4, n: 2 },
        ];
        for edit in &edits {
            let mut buf = Vec::new();
            edit.encode(&mut buf);
            let mut r = Reader::new(&buf);
            assert_eq!(&Edit::decode(&mut r).unwrap(), edit);
            r.expect_done("edit").unwrap();
        }
    }

    #[test]
    fn value_roundtrip_all_variants() {
        let values = [
            CellValue::Empty,
            CellValue::Number(-0.5),
            CellValue::Text("héllo".into()),
            CellValue::Bool(true),
            CellValue::Error(CellError::Circular),
        ];
        for v in &values {
            let mut buf = Vec::new();
            put_value(&mut buf, v);
            assert_eq!(&read_value(&mut Reader::new(&buf)).unwrap(), v);
        }
    }

    #[test]
    fn cell_error_tags_roundtrip() {
        for e in [
            CellError::Div0,
            CellError::Value,
            CellError::Ref,
            CellError::Name,
            CellError::Na,
            CellError::Num,
            CellError::Circular,
        ] {
            assert_eq!(error_from_u8(error_to_u8(e)).unwrap(), e);
        }
        assert!(error_from_u8(200).is_err());
    }

    #[test]
    fn garbage_tags_are_corruption_not_panics() {
        assert!(Edit::decode(&mut Reader::new(&[9])).is_err());
        assert!(read_value(&mut Reader::new(&[77])).is_err());
        assert!(read_value(&mut Reader::new(&[])).is_err());
    }
}
