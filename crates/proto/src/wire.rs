//! Request/response envelopes and length-prefixed framing.
//!
//! A connection carries a stream of frames in each direction. Every frame
//! is `u32` little-endian payload length + payload; every payload starts
//! with a `u64` request id chosen by the client, so responses can return
//! out of order and many logical sessions can multiplex over one
//! connection — the id is the demultiplexing key, the server echoes it
//! verbatim.
//!
//! Decoding never trusts the peer: lengths are capped at [`MAX_FRAME`],
//! tags and payloads are bounds-checked by [`Reader`], and every malformed
//! input surfaces as an error the caller can turn into a clean
//! [`crate::codes::PROTOCOL`] rejection (server) or error return (client).

use std::io::{Read, Write};

use dataspread_grid::{CellAddr, CellValue, Rect};
use dataspread_obs::RegistrySnapshot;
use dataspread_relstore::codec::{corrupt, put_str, put_u16, put_u32, put_u64, put_u8, Reader};
use dataspread_relstore::StoreError;

use crate::metrics::{decode_metrics, encode_metrics};
use crate::patch::WindowPatch;
use crate::types::{
    put_rect, put_value, read_rect, read_value, CheckpointSummary, Edit, EditReceipt, WireError,
    WireStats,
};

/// Bumped on any incompatible change; the hello handshake rejects
/// mismatches before any other request is processed. Version 2 replaced
/// the fixed-shape stats payload with the field-tagged [`WireStats`]
/// encoding and added `Metrics`.
pub const PROTOCOL_VERSION: u16 = 2;

/// Hard cap on one frame's payload, matching the WAL's record bound — an
/// import that fits in one WAL record fits in one frame.
pub const MAX_FRAME: usize = 64 << 20;

/// Write one `u32`-length-prefixed frame (caller flushes).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame. `Ok(None)` on clean EOF at a frame boundary;
/// `InvalidData` on an oversized or zero length; `UnexpectedEof` when the
/// stream dies mid-frame.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    // Read the length prefix byte-wise so EOF *between* frames (0 bytes
    // read) is distinguishable from truncation *inside* the prefix.
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection dropped inside a frame length prefix",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 || len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} outside (0, {MAX_FRAME}]"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// One session-API request. Variants mirror `Session`'s methods
/// one-to-one; `Hello` and `Ping` are connection plumbing.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Must be the first request on a connection.
    Hello {
        version: u16,
    },
    OpenSheet {
        sheet: String,
    },
    FetchWindow {
        sheet: String,
        rect: Rect,
    },
    Value {
        sheet: String,
        addr: CellAddr,
    },
    ApplyEdit {
        sheet: String,
        edit: Edit,
    },
    StageEdit {
        sheet: String,
        edit: Edit,
    },
    AwaitCommit {
        sheet: String,
        ticket: u64,
    },
    ImportRows {
        sheet: String,
        top_left: CellAddr,
        width: u32,
        rows: Vec<Vec<CellValue>>,
    },
    Checkpoint {
        sheet: String,
    },
    Stats {
        sheet: String,
    },
    Ping,
    /// The sheet's restart-reconciliation pair (answered with
    /// [`Response::Ticket`]). Reconnecting clients use it to decide
    /// which staged edits to re-send.
    DurableTicket {
        sheet: String,
    },
    /// Whole-workspace metrics snapshot: every counter/gauge/histogram,
    /// the slow-op event ring, and per-sheet health (answered with
    /// [`Response::Metrics`]).
    Metrics,
}

impl Request {
    /// Encode as a frame payload: request id, tag, body.
    pub fn encode(&self, req_id: u64) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, req_id);
        match self {
            Request::Hello { version } => {
                put_u8(&mut out, 0);
                put_u16(&mut out, *version);
            }
            Request::OpenSheet { sheet } => {
                put_u8(&mut out, 1);
                put_str(&mut out, sheet);
            }
            Request::FetchWindow { sheet, rect } => {
                put_u8(&mut out, 2);
                put_str(&mut out, sheet);
                put_rect(&mut out, *rect);
            }
            Request::Value { sheet, addr } => {
                put_u8(&mut out, 3);
                put_str(&mut out, sheet);
                put_u32(&mut out, addr.row);
                put_u32(&mut out, addr.col);
            }
            Request::ApplyEdit { sheet, edit } => {
                put_u8(&mut out, 4);
                put_str(&mut out, sheet);
                edit.encode(&mut out);
            }
            Request::StageEdit { sheet, edit } => {
                put_u8(&mut out, 5);
                put_str(&mut out, sheet);
                edit.encode(&mut out);
            }
            Request::AwaitCommit { sheet, ticket } => {
                put_u8(&mut out, 6);
                put_str(&mut out, sheet);
                put_u64(&mut out, *ticket);
            }
            Request::ImportRows {
                sheet,
                top_left,
                width,
                rows,
            } => {
                put_u8(&mut out, 7);
                put_str(&mut out, sheet);
                put_u32(&mut out, top_left.row);
                put_u32(&mut out, top_left.col);
                put_u32(&mut out, *width);
                put_u32(&mut out, rows.len() as u32);
                for row in rows {
                    put_u32(&mut out, row.len() as u32);
                    for v in row {
                        put_value(&mut out, v);
                    }
                }
            }
            Request::Checkpoint { sheet } => {
                put_u8(&mut out, 8);
                put_str(&mut out, sheet);
            }
            Request::Stats { sheet } => {
                put_u8(&mut out, 9);
                put_str(&mut out, sheet);
            }
            Request::Ping => put_u8(&mut out, 10),
            Request::DurableTicket { sheet } => {
                put_u8(&mut out, 11);
                put_str(&mut out, sheet);
            }
            Request::Metrics => put_u8(&mut out, 12),
        }
        out
    }

    /// Decode a frame payload into `(req_id, request)`.
    pub fn decode(payload: &[u8]) -> Result<(u64, Request), StoreError> {
        let mut r = Reader::new(payload);
        let req_id = r.u64()?;
        let req = match r.u8()? {
            0 => Request::Hello { version: r.u16()? },
            1 => Request::OpenSheet { sheet: r.str()? },
            2 => Request::FetchWindow {
                sheet: r.str()?,
                rect: read_rect(&mut r)?,
            },
            3 => Request::Value {
                sheet: r.str()?,
                addr: CellAddr::new(r.u32()?, r.u32()?),
            },
            4 => Request::ApplyEdit {
                sheet: r.str()?,
                edit: Edit::decode(&mut r)?,
            },
            5 => Request::StageEdit {
                sheet: r.str()?,
                edit: Edit::decode(&mut r)?,
            },
            6 => Request::AwaitCommit {
                sheet: r.str()?,
                ticket: r.u64()?,
            },
            7 => {
                let sheet = r.str()?;
                let top_left = CellAddr::new(r.u32()?, r.u32()?);
                let width = r.u32()?;
                let row_count = r.u32()? as usize;
                let mut rows = Vec::with_capacity(row_count.min(1 << 16));
                for _ in 0..row_count {
                    let n = r.u32()? as usize;
                    let mut row = Vec::with_capacity(n.min(1 << 16));
                    for _ in 0..n {
                        row.push(read_value(&mut r)?);
                    }
                    rows.push(row);
                }
                Request::ImportRows {
                    sheet,
                    top_left,
                    width,
                    rows,
                }
            }
            8 => Request::Checkpoint { sheet: r.str()? },
            9 => Request::Stats { sheet: r.str()? },
            10 => Request::Ping,
            11 => Request::DurableTicket { sheet: r.str()? },
            12 => Request::Metrics,
            t => return Err(corrupt(format!("unknown request tag {t}"))),
        };
        r.expect_done("request")?;
        Ok((req_id, req))
    }
}

/// One session-API response, tagged with the request id it answers.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Hello {
        version: u16,
    },
    /// `open_sheet` / `await_commit` success.
    Ok,
    Window(WindowPatch),
    Value(CellValue),
    Receipt(EditReceipt),
    Imported(Rect),
    /// `None` on in-memory workspaces (nothing to checkpoint).
    Checkpoint(Option<CheckpointSummary>),
    Stats(WireStats),
    Pong,
    Err(WireError),
    /// `DurableTicket` answer, both values frozen when the sheet's
    /// directory was last opened: `incarnation` strictly increases
    /// across server restarts (so a client can tell a restart from a
    /// dropped connection), and `horizon` is the highest pre-restart
    /// commit ticket the disk proved durable — staged edits with tickets
    /// above it were lost and must be re-staged. Both 0 on in-memory
    /// workspaces.
    Ticket {
        incarnation: u64,
        horizon: u64,
    },
    /// Whole-workspace metrics snapshot ([`Request::Metrics`] answer),
    /// carried in the canonical validated encoding of
    /// [`crate::metrics`].
    Metrics(RegistrySnapshot),
}

impl Response {
    /// Encode as a frame payload: request id, tag, body.
    pub fn encode(&self, req_id: u64) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, req_id);
        match self {
            Response::Hello { version } => {
                put_u8(&mut out, 0);
                put_u16(&mut out, *version);
            }
            Response::Ok => put_u8(&mut out, 1),
            Response::Window(patch) => {
                put_u8(&mut out, 2);
                patch.encode(&mut out);
            }
            Response::Value(v) => {
                put_u8(&mut out, 3);
                put_value(&mut out, v);
            }
            Response::Receipt(receipt) => {
                put_u8(&mut out, 4);
                put_u64(&mut out, receipt.ticket);
                put_u8(&mut out, u8::from(receipt.durable));
            }
            Response::Imported(rect) => {
                put_u8(&mut out, 5);
                put_rect(&mut out, *rect);
            }
            Response::Checkpoint(summary) => {
                put_u8(&mut out, 6);
                match summary {
                    None => put_u8(&mut out, 0),
                    Some(s) => {
                        put_u8(&mut out, 1);
                        s.encode(&mut out);
                    }
                }
            }
            Response::Stats(stats) => {
                put_u8(&mut out, 7);
                stats.encode(&mut out);
            }
            Response::Pong => put_u8(&mut out, 8),
            Response::Err(e) => {
                put_u8(&mut out, 9);
                put_u16(&mut out, e.code);
                put_str(&mut out, &e.detail);
            }
            Response::Ticket {
                incarnation,
                horizon,
            } => {
                put_u8(&mut out, 10);
                put_u64(&mut out, *incarnation);
                put_u64(&mut out, *horizon);
            }
            Response::Metrics(snap) => {
                put_u8(&mut out, 11);
                encode_metrics(snap, &mut out);
            }
        }
        out
    }

    /// Decode a frame payload into `(req_id, response)`.
    pub fn decode(payload: &[u8]) -> Result<(u64, Response), StoreError> {
        let mut r = Reader::new(payload);
        let req_id = r.u64()?;
        let resp = match r.u8()? {
            0 => Response::Hello { version: r.u16()? },
            1 => Response::Ok,
            2 => Response::Window(WindowPatch::decode(&mut r)?),
            3 => Response::Value(read_value(&mut r)?),
            4 => Response::Receipt(EditReceipt {
                ticket: r.u64()?,
                durable: r.u8()? != 0,
            }),
            5 => Response::Imported(read_rect(&mut r)?),
            6 => match r.u8()? {
                0 => Response::Checkpoint(None),
                1 => Response::Checkpoint(Some(CheckpointSummary::decode(&mut r)?)),
                t => return Err(corrupt(format!("unknown checkpoint presence tag {t}"))),
            },
            7 => Response::Stats(WireStats::decode(&mut r)?),
            8 => Response::Pong,
            9 => Response::Err(WireError {
                code: r.u16()?,
                detail: r.str()?,
            }),
            10 => Response::Ticket {
                incarnation: r.u64()?,
                horizon: r.u64()?,
            },
            11 => Response::Metrics(decode_metrics(&mut r)?),
            t => return Err(corrupt(format!("unknown response tag {t}"))),
        };
        r.expect_done("response")?;
        Ok((req_id, resp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_grid::Cell;

    fn roundtrip_req(req: &Request) {
        let payload = req.encode(42);
        let (id, decoded) = Request::decode(&payload).unwrap();
        assert_eq!(id, 42);
        assert_eq!(&decoded, req);
    }

    fn roundtrip_resp(resp: &Response) {
        let payload = resp.encode(7);
        let (id, decoded) = Response::decode(&payload).unwrap();
        assert_eq!(id, 7);
        assert_eq!(&decoded, resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(&Request::Hello {
            version: PROTOCOL_VERSION,
        });
        roundtrip_req(&Request::OpenSheet { sheet: "s".into() });
        roundtrip_req(&Request::FetchWindow {
            sheet: "s".into(),
            rect: Rect::new(0, 0, 9, 9),
        });
        roundtrip_req(&Request::Value {
            sheet: "s".into(),
            addr: CellAddr::new(3, 4),
        });
        roundtrip_req(&Request::ApplyEdit {
            sheet: "s".into(),
            edit: Edit::Set {
                row: 1,
                col: 2,
                input: "=A1".into(),
            },
        });
        roundtrip_req(&Request::StageEdit {
            sheet: "s".into(),
            edit: Edit::InsertRows { at: 0, n: 2 },
        });
        roundtrip_req(&Request::AwaitCommit {
            sheet: "s".into(),
            ticket: 99,
        });
        roundtrip_req(&Request::ImportRows {
            sheet: "s".into(),
            top_left: CellAddr::new(5, 5),
            width: 2,
            rows: vec![
                vec![CellValue::Number(1.0), CellValue::Text("a".into())],
                vec![CellValue::Bool(false), CellValue::Empty],
            ],
        });
        roundtrip_req(&Request::Checkpoint { sheet: "s".into() });
        roundtrip_req(&Request::Stats { sheet: "s".into() });
        roundtrip_req(&Request::Ping);
        roundtrip_req(&Request::DurableTicket { sheet: "s".into() });
        roundtrip_req(&Request::Metrics);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(&Response::Hello {
            version: PROTOCOL_VERSION,
        });
        roundtrip_resp(&Response::Ok);
        roundtrip_resp(&Response::Window(WindowPatch::from_cells(
            Rect::new(0, 0, 3, 3),
            vec![
                (CellAddr::new(0, 0), Cell::value(1.0)),
                (CellAddr::new(1, 1), Cell::formula("A1").with_value(1.0)),
            ],
        )));
        roundtrip_resp(&Response::Value(CellValue::Text("v".into())));
        roundtrip_resp(&Response::Receipt(EditReceipt {
            ticket: 12,
            durable: true,
        }));
        roundtrip_resp(&Response::Imported(Rect::new(1, 1, 4, 2)));
        roundtrip_resp(&Response::Checkpoint(None));
        roundtrip_resp(&Response::Checkpoint(Some(CheckpointSummary {
            pages_written: 3,
            regions_total: 5,
            regions_dirty: 1,
            regions_written: 1,
        })));
        let stats = WireStats {
            filled_cells: 100,
            regions: 2,
            persistent: true,
            wal_bytes: 4096,
            cache_hits: 10,
            health: dataspread_obs::Health::Degraded,
            degraded_cause: Some("fsync failed".into()),
            degraded_since_ms: Some(1_700_000_000_000),
            ..Default::default()
        };
        roundtrip_resp(&Response::Stats(stats));
        roundtrip_resp(&Response::Pong);
        roundtrip_resp(&Response::Err(WireError::new(3, "drain first")));
        roundtrip_resp(&Response::Ticket {
            incarnation: 3,
            horizon: 88,
        });
        let registry = dataspread_obs::MetricsRegistry::new();
        registry.counter("wal_fsyncs", &[("sheet", "s")]).add(5);
        registry
            .histogram("apply_edit_ns", &[("sheet", "s")])
            .record_ns(1_500_000);
        registry.note_op("s", "apply_edit", u64::MAX, 1, "ok");
        let mut snap = registry.snapshot();
        snap.sheets.push(dataspread_obs::SheetHealth {
            sheet: "s".into(),
            health: dataspread_obs::Health::Healthy,
            cause: None,
            since_ms: None,
        });
        roundtrip_resp(&Response::Metrics(snap));
    }

    #[test]
    fn stats_decoder_skips_unknown_fields() {
        // A future server appends a field this decoder has no id for; the
        // known fields still land and the rest is dropped.
        let stats = WireStats {
            filled_cells: 7,
            ..Default::default()
        };
        let mut body = Vec::new();
        stats.encode(&mut body);
        // Splice one unknown field (id 999, 4-byte payload) in front and
        // bump the count.
        let count = u32::from_le_bytes(body[..4].try_into().unwrap());
        let mut spliced = Vec::new();
        put_u32(&mut spliced, count + 1);
        put_u16(&mut spliced, 999);
        put_u32(&mut spliced, 4);
        spliced.extend_from_slice(&[1, 2, 3, 4]);
        spliced.extend_from_slice(&body[4..]);
        let mut r = Reader::new(&spliced);
        let decoded = WireStats::decode(&mut r).unwrap();
        r.expect_done("stats").unwrap();
        assert_eq!(decoded, stats);
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping.encode(1)).unwrap();
        write_frame(
            &mut buf,
            &Request::OpenSheet { sheet: "x".into() }.encode(2),
        )
        .unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let p1 = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(Request::decode(&p1).unwrap(), (1, Request::Ping));
        let p2 = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(
            Request::decode(&p2).unwrap(),
            (2, Request::OpenSheet { sheet: "x".into() })
        );
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_and_truncated_frames_error() {
        // Oversized declared length.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let err = read_frame(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Zero length.
        let err = read_frame(&mut std::io::Cursor::new(0u32.to_le_bytes().to_vec())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        // Truncated mid-payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.extend_from_slice(&[1, 2, 3]);
        let err = read_frame(&mut std::io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);

        // Truncated mid-length-prefix is *not* a clean EOF.
        let err = read_frame(&mut std::io::Cursor::new(vec![9u8, 0])).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn trailing_bytes_in_payload_are_rejected() {
        let mut payload = Request::Ping.encode(1);
        payload.push(0);
        assert!(Request::decode(&payload).is_err());
        let mut payload = Response::Ok.encode(1);
        payload.push(0);
        assert!(Response::decode(&payload).is_err());
    }
}
