//! Property tests for the metrics snapshot codec: arbitrary (canonical)
//! registry snapshots must round-trip exactly, every strict prefix must
//! be rejected, and a single bit flip must either fail decode or yield a
//! snapshot that re-encodes to exactly the mutated bytes (i.e. the
//! encoding stays canonical — corruption can never produce two byte
//! strings for one value).

use proptest::prelude::*;

use dataspread_obs::{Event, Health, Histogram, HistogramSnapshot, RegistrySnapshot, SheetHealth};
use dataspread_proto::{decode_metrics, encode_metrics};
use dataspread_relstore::codec::Reader;

fn histogram() -> impl Strategy<Value = HistogramSnapshot> {
    prop::collection::vec(any::<u64>(), 0..12).prop_map(|samples| {
        let h = Histogram::new();
        for s in samples {
            // Shift down so sums stay far from wrap (record() wraps its
            // running sum; canonical snapshots from real workloads do
            // not, and the codec only sees snapshots).
            h.record(s >> 8);
        }
        h.snapshot()
    })
}

fn metric_key() -> impl Strategy<Value = String> {
    (
        "[a-z_]{1,12}",
        prop_oneof![Just(None).boxed(), "[a-z0-9]{1,6}".prop_map(Some).boxed(),],
    )
        .prop_map(|(name, sheet)| match sheet {
            Some(s) => format!("{name}{{sheet=\"{s}\"}}"),
            None => name,
        })
}

fn event() -> impl Strategy<Value = Event> {
    (
        any::<u64>(),
        "[a-z_]{1,10}",
        "[a-z0-9]{0,8}",
        "[a-z_]{0,10}",
        any::<u64>(),
        any::<u64>(),
        "[ -~]{0,20}",
    )
        .prop_map(
            |(ts_ms, kind, sheet, op, duration_ns, ticket, outcome)| Event {
                ts_ms,
                kind,
                sheet,
                op,
                duration_ns,
                ticket,
                outcome,
            },
        )
}

fn sheet_health() -> impl Strategy<Value = SheetHealth> {
    (
        "[a-z0-9_]{1,10}",
        prop_oneof![
            Just((Health::Healthy, None, None)).boxed(),
            ("[ -~]{1,30}", any::<u64>())
                .prop_map(|(cause, ms)| (Health::Degraded, Some(cause), Some(ms)))
                .boxed(),
            "[ -~]{1,30}"
                .prop_map(|cause| (Health::Degraded, Some(cause), None))
                .boxed(),
        ],
    )
        .prop_map(|(sheet, (health, cause, since_ms))| SheetHealth {
            sheet,
            health,
            cause,
            since_ms,
        })
}

/// Sorted, deduplicated key/value sections — what `BTreeMap` iteration
/// (the only real producer) emits.
fn sorted<T: std::fmt::Debug + Clone>(pairs: Vec<(String, T)>) -> Vec<(String, T)> {
    let mut map = std::collections::BTreeMap::new();
    for (k, v) in pairs {
        map.insert(k, v);
    }
    map.into_iter().collect()
}

fn snapshot() -> impl Strategy<Value = RegistrySnapshot> {
    (
        prop::collection::vec((metric_key(), any::<u64>()), 0..8),
        prop::collection::vec((metric_key(), any::<i64>()), 0..8),
        prop::collection::vec((metric_key(), histogram()), 0..6),
        prop::collection::vec(event(), 0..6),
        any::<u64>(),
        prop::collection::vec(sheet_health(), 0..4),
    )
        .prop_map(
            |(counters, gauges, histograms, events, events_dropped, sheets)| {
                let mut by_name = std::collections::BTreeMap::new();
                for s in sheets {
                    by_name.insert(s.sheet.clone(), s);
                }
                RegistrySnapshot {
                    counters: sorted(counters),
                    gauges: sorted(gauges),
                    histograms: sorted(histograms),
                    events,
                    events_dropped,
                    sheets: by_name.into_values().collect(),
                }
            },
        )
}

proptest! {
    #[test]
    fn roundtrip_exact(snap in snapshot()) {
        let mut buf = Vec::new();
        encode_metrics(&snap, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode_metrics(&mut r).unwrap();
        r.expect_done("metrics").unwrap();
        prop_assert_eq!(back, snap);
    }

    #[test]
    fn truncation_always_rejected(snap in snapshot(), cut in 0usize..4096) {
        let mut buf = Vec::new();
        encode_metrics(&snap, &mut buf);
        let cut = cut % buf.len().max(1);
        if cut < buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            let res = decode_metrics(&mut r).and_then(|s| {
                r.expect_done("metrics")?;
                Ok(s)
            });
            prop_assert!(res.is_err(), "strict prefix of {} bytes decoded", cut);
        }
    }

    #[test]
    fn bit_flip_fails_or_stays_canonical(
        snap in snapshot(),
        flip in 0usize..4096,
    ) {
        let mut buf = Vec::new();
        encode_metrics(&snap, &mut buf);
        let mut mutated = buf.clone();
        let i = flip % mutated.len();
        mutated[i] ^= 1 << (flip % 8);
        let mut r = Reader::new(&mutated);
        if let Ok(back) = decode_metrics(&mut r) {
            if r.expect_done("metrics").is_ok() {
                // Decoded without error: the flip must have produced a
                // different-but-valid snapshot whose canonical encoding
                // is exactly the mutated bytes — never a second byte
                // representation of some value.
                let mut re = Vec::new();
                encode_metrics(&back, &mut re);
                prop_assert_eq!(re, mutated);
            }
        }
    }
}
