//! Row expressions: the WHERE/filter language shared by the relational
//! operators and the SQL engine.

use dataspread_relstore::Datum;

use crate::relation::{cmp_datum, Relation};
use crate::RelError;

/// An expression evaluated against a single row.
#[derive(Debug, Clone, PartialEq)]
pub enum RowExpr {
    Literal(Datum),
    /// `?` prepared-statement placeholder, 0-based.
    Param(usize),
    Column(String),
    Cmp(CmpOp, Box<RowExpr>, Box<RowExpr>),
    Arith(ArithOp, Box<RowExpr>, Box<RowExpr>),
    And(Box<RowExpr>, Box<RowExpr>),
    Or(Box<RowExpr>, Box<RowExpr>),
    Not(Box<RowExpr>),
    IsNull(Box<RowExpr>, bool),
    /// Aggregate call — only valid in SELECT items (the executor evaluates
    /// these over groups, never per-row).
    Aggregate(AggFunc, Option<Box<RowExpr>>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl RowExpr {
    pub fn col(name: impl Into<String>) -> Self {
        RowExpr::Column(name.into())
    }

    pub fn lit(d: impl Into<Datum>) -> Self {
        RowExpr::Literal(d.into())
    }

    pub fn eq(self, other: RowExpr) -> Self {
        RowExpr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    pub fn contains_aggregate(&self) -> bool {
        match self {
            RowExpr::Aggregate(..) => true,
            RowExpr::Cmp(_, a, b)
            | RowExpr::Arith(_, a, b)
            | RowExpr::And(a, b)
            | RowExpr::Or(a, b) => a.contains_aggregate() || b.contains_aggregate(),
            RowExpr::Not(e) | RowExpr::IsNull(e, _) => e.contains_aggregate(),
            _ => false,
        }
    }

    /// Substitute `?` parameters with literal values.
    pub fn bind(&self, params: &[Datum]) -> Result<RowExpr, RelError> {
        Ok(match self {
            RowExpr::Param(i) => {
                RowExpr::Literal(params.get(*i).cloned().ok_or(RelError::ParamCount {
                    expected: i + 1,
                    got: params.len(),
                })?)
            }
            RowExpr::Cmp(op, a, b) => {
                RowExpr::Cmp(*op, Box::new(a.bind(params)?), Box::new(b.bind(params)?))
            }
            RowExpr::Arith(op, a, b) => {
                RowExpr::Arith(*op, Box::new(a.bind(params)?), Box::new(b.bind(params)?))
            }
            RowExpr::And(a, b) => {
                RowExpr::And(Box::new(a.bind(params)?), Box::new(b.bind(params)?))
            }
            RowExpr::Or(a, b) => RowExpr::Or(Box::new(a.bind(params)?), Box::new(b.bind(params)?)),
            RowExpr::Not(e) => RowExpr::Not(Box::new(e.bind(params)?)),
            RowExpr::IsNull(e, n) => RowExpr::IsNull(Box::new(e.bind(params)?), *n),
            RowExpr::Aggregate(f, e) => RowExpr::Aggregate(
                *f,
                match e {
                    Some(e) => Some(Box::new(e.bind(params)?)),
                    None => None,
                },
            ),
            leaf => leaf.clone(),
        })
    }

    /// Evaluate against one row of `schema`.
    pub fn eval(&self, schema: &Relation, row: &[Datum]) -> Result<Datum, RelError> {
        match self {
            RowExpr::Literal(d) => Ok(d.clone()),
            RowExpr::Param(i) => Err(RelError::ParamCount {
                expected: i + 1,
                got: 0,
            }),
            RowExpr::Column(name) => {
                let idx = schema.resolve(name)?;
                Ok(row[idx].clone())
            }
            RowExpr::Cmp(op, a, b) => {
                let x = a.eval(schema, row)?;
                let y = b.eval(schema, row)?;
                // SQL semantics: comparisons with NULL are NULL (here:
                // false for filtering purposes, expressed as Null).
                if x.is_null() || y.is_null() {
                    return Ok(Datum::Null);
                }
                let ord = cmp_datum(&x, &y);
                use std::cmp::Ordering;
                let res = match op {
                    CmpOp::Eq => ord == Ordering::Equal,
                    CmpOp::Ne => ord != Ordering::Equal,
                    CmpOp::Lt => ord == Ordering::Less,
                    CmpOp::Le => ord != Ordering::Greater,
                    CmpOp::Gt => ord == Ordering::Greater,
                    CmpOp::Ge => ord != Ordering::Less,
                };
                Ok(Datum::Bool(res))
            }
            RowExpr::Arith(op, a, b) => {
                let x = a.eval(schema, row)?;
                let y = b.eval(schema, row)?;
                if x.is_null() || y.is_null() {
                    return Ok(Datum::Null);
                }
                arith(*op, &x, &y)
            }
            RowExpr::And(a, b) => {
                let x = truthy(&a.eval(schema, row)?);
                let y = truthy(&b.eval(schema, row)?);
                Ok(Datum::Bool(x && y))
            }
            RowExpr::Or(a, b) => {
                let x = truthy(&a.eval(schema, row)?);
                let y = truthy(&b.eval(schema, row)?);
                Ok(Datum::Bool(x || y))
            }
            RowExpr::Not(e) => Ok(Datum::Bool(!truthy(&e.eval(schema, row)?))),
            RowExpr::IsNull(e, want_null) => {
                let v = e.eval(schema, row)?;
                Ok(Datum::Bool(v.is_null() == *want_null))
            }
            RowExpr::Aggregate(..) => Err(RelError::Unsupported(
                "aggregate outside SELECT items".into(),
            )),
        }
    }

    /// Evaluate as a filter predicate (NULL ⇒ false).
    pub fn matches(&self, schema: &Relation, row: &[Datum]) -> Result<bool, RelError> {
        Ok(truthy(&self.eval(schema, row)?))
    }
}

fn truthy(d: &Datum) -> bool {
    match d {
        Datum::Bool(b) => *b,
        Datum::Int(i) => *i != 0,
        Datum::Float(f) => *f != 0.0,
        Datum::Null => false,
        Datum::Text(s) => !s.is_empty(),
    }
}

fn arith(op: ArithOp, x: &Datum, y: &Datum) -> Result<Datum, RelError> {
    // Integer arithmetic stays integral except for division.
    if let (Datum::Int(a), Datum::Int(b)) = (x, y) {
        return Ok(match op {
            ArithOp::Add => Datum::Int(a + b),
            ArithOp::Sub => Datum::Int(a - b),
            ArithOp::Mul => Datum::Int(a * b),
            ArithOp::Div => {
                if *b == 0 {
                    return Err(RelError::Type("division by zero".into()));
                }
                if a % b == 0 {
                    Datum::Int(a / b)
                } else {
                    Datum::Float(*a as f64 / *b as f64)
                }
            }
        });
    }
    let (Some(a), Some(b)) = (x.as_f64(), y.as_f64()) else {
        return Err(RelError::Type(format!("non-numeric operands {x:?}, {y:?}")));
    };
    let n = match op {
        ArithOp::Add => a + b,
        ArithOp::Sub => a - b,
        ArithOp::Mul => a * b,
        ArithOp::Div => {
            if b == 0.0 {
                return Err(RelError::Type("division by zero".into()));
            }
            a / b
        }
    };
    Ok(Datum::Float(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Relation {
        Relation::empty(vec!["a".into(), "b".into()])
    }

    #[test]
    fn column_and_literal() {
        let s = schema();
        let row = vec![Datum::Int(5), Datum::Text("x".into())];
        assert_eq!(RowExpr::col("a").eval(&s, &row).unwrap(), Datum::Int(5));
        assert_eq!(RowExpr::lit(7i64).eval(&s, &row).unwrap(), Datum::Int(7));
        assert!(RowExpr::col("zz").eval(&s, &row).is_err());
    }

    #[test]
    fn comparisons_and_null_semantics() {
        let s = schema();
        let row = vec![Datum::Int(5), Datum::Null];
        let e = RowExpr::col("a").eq(RowExpr::lit(5i64));
        assert_eq!(e.eval(&s, &row).unwrap(), Datum::Bool(true));
        let n = RowExpr::col("b").eq(RowExpr::lit(5i64));
        assert_eq!(n.eval(&s, &row).unwrap(), Datum::Null);
        assert!(!n.matches(&s, &row).unwrap(), "NULL comparison filters out");
        let isn = RowExpr::IsNull(Box::new(RowExpr::col("b")), true);
        assert_eq!(isn.eval(&s, &row).unwrap(), Datum::Bool(true));
    }

    #[test]
    fn arithmetic_int_float() {
        let s = schema();
        let row = vec![Datum::Int(7), Datum::Float(2.0)];
        let e = RowExpr::Arith(
            ArithOp::Add,
            Box::new(RowExpr::col("a")),
            Box::new(RowExpr::lit(3i64)),
        );
        assert_eq!(e.eval(&s, &row).unwrap(), Datum::Int(10));
        let d = RowExpr::Arith(
            ArithOp::Div,
            Box::new(RowExpr::col("a")),
            Box::new(RowExpr::col("b")),
        );
        assert_eq!(d.eval(&s, &row).unwrap(), Datum::Float(3.5));
        let z = RowExpr::Arith(
            ArithOp::Div,
            Box::new(RowExpr::col("a")),
            Box::new(RowExpr::lit(0i64)),
        );
        assert!(z.eval(&s, &row).is_err());
    }

    #[test]
    fn bind_parameters() {
        let e = RowExpr::col("a").eq(RowExpr::Param(0));
        let bound = e.bind(&[Datum::Int(9)]).unwrap();
        assert_eq!(bound, RowExpr::col("a").eq(RowExpr::lit(9i64)));
        assert!(matches!(
            e.bind(&[]),
            Err(RelError::ParamCount {
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn aggregate_detection() {
        let e = RowExpr::Aggregate(AggFunc::Sum, Some(Box::new(RowExpr::col("a"))));
        assert!(e.contains_aggregate());
        assert!(!RowExpr::col("a").contains_aggregate());
        let nested = RowExpr::Arith(ArithOp::Add, Box::new(e), Box::new(RowExpr::lit(1i64)));
        assert!(nested.contains_aggregate());
    }
}
