//! Relational operations for PDM (paper §III "Database-Oriented
//! Operations", §VI "Relational Operations", Appendix B).
//!
//! DataSpread exposes relational operators as spreadsheet functions —
//! `union`, `difference`, `intersection`, `crossproduct`, `join`, `select`
//! (filter), `project`, `rename` — each returning a single *composite table
//! value* ([`Relation`]), which `index(table, i, j)` then dereferences onto
//! the grid. A `sql(query, params…)` function evaluates a SQL `SELECT`
//! against the backing database; this crate implements that SELECT subset
//! from scratch (joins, WHERE, GROUP BY aggregates, ORDER BY, LIMIT,
//! `?` prepared-statement parameters).

pub mod expr;
pub mod ops;
pub mod relation;
pub mod sql;

pub use expr::RowExpr;
pub use relation::Relation;
pub use sql::{execute_sql, TableProvider};

/// Errors raised by relational operations.
#[derive(Debug, Clone, PartialEq)]
pub enum RelError {
    /// Operand schemas are incompatible (union/difference/intersection).
    SchemaMismatch(String),
    /// A referenced column does not exist or is ambiguous.
    BadColumn(String),
    /// SQL/expression syntax error.
    Syntax(String),
    /// A referenced table does not exist.
    NoSuchTable(String),
    /// Type error during expression evaluation.
    Type(String),
    /// Wrong number of `?` parameters.
    ParamCount { expected: usize, got: usize },
    /// Feature outside the supported SELECT subset.
    Unsupported(String),
}

impl std::fmt::Display for RelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            RelError::BadColumn(c) => write!(f, "unknown or ambiguous column: {c}"),
            RelError::Syntax(m) => write!(f, "syntax error: {m}"),
            RelError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            RelError::Type(m) => write!(f, "type error: {m}"),
            RelError::ParamCount { expected, got } => {
                write!(f, "expected {expected} parameters, got {got}")
            }
            RelError::Unsupported(m) => write!(f, "unsupported SQL: {m}"),
        }
    }
}

impl std::error::Error for RelError {}
