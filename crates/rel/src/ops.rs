//! The relational operators exposed as spreadsheet functions (Appendix B).

use std::collections::BTreeSet;

use dataspread_relstore::Datum;

use crate::expr::RowExpr;
use crate::relation::{cmp_datum, Relation};
use crate::RelError;

/// Sortable key wrapper for set semantics over rows.
fn row_key(row: &[Datum]) -> Vec<OrdDatum> {
    row.iter().cloned().map(OrdDatum).collect()
}

#[derive(Debug, Clone, PartialEq)]
struct OrdDatum(Datum);

impl Eq for OrdDatum {}
impl PartialOrd for OrdDatum {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdDatum {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        cmp_datum(&self.0, &other.0)
    }
}

fn check_union_compatible(a: &Relation, b: &Relation) -> Result<(), RelError> {
    if a.arity() != b.arity() {
        return Err(RelError::SchemaMismatch(format!(
            "arity {} vs {}",
            a.arity(),
            b.arity()
        )));
    }
    Ok(())
}

/// Set union (deduplicated), keeping the left schema.
pub fn union(a: &Relation, b: &Relation) -> Result<Relation, RelError> {
    check_union_compatible(a, b)?;
    let mut seen = BTreeSet::new();
    let mut rows = Vec::new();
    for row in a.rows.iter().chain(b.rows.iter()) {
        if seen.insert(row_key(row)) {
            rows.push(row.clone());
        }
    }
    Ok(Relation::new(a.columns.clone(), rows))
}

/// Set difference `a − b`.
pub fn difference(a: &Relation, b: &Relation) -> Result<Relation, RelError> {
    check_union_compatible(a, b)?;
    let exclude: BTreeSet<_> = b.rows.iter().map(|r| row_key(r)).collect();
    let mut seen = BTreeSet::new();
    let rows = a
        .rows
        .iter()
        .filter(|r| !exclude.contains(&row_key(r)) && seen.insert(row_key(r)))
        .cloned()
        .collect();
    Ok(Relation::new(a.columns.clone(), rows))
}

/// Set intersection.
pub fn intersection(a: &Relation, b: &Relation) -> Result<Relation, RelError> {
    check_union_compatible(a, b)?;
    let keep: BTreeSet<_> = b.rows.iter().map(|r| row_key(r)).collect();
    let mut seen = BTreeSet::new();
    let rows = a
        .rows
        .iter()
        .filter(|r| keep.contains(&row_key(r)) && seen.insert(row_key(r)))
        .cloned()
        .collect();
    Ok(Relation::new(a.columns.clone(), rows))
}

/// Disambiguate column names when concatenating two schemas: qualify with
/// the given prefixes on collision.
fn joined_columns(a: &Relation, b: &Relation, pa: &str, pb: &str) -> Vec<String> {
    let mut cols = Vec::with_capacity(a.arity() + b.arity());
    for c in &a.columns {
        if b.columns.iter().any(|d| d.eq_ignore_ascii_case(c)) && !c.contains('.') {
            cols.push(format!("{pa}.{c}"));
        } else {
            cols.push(c.clone());
        }
    }
    for c in &b.columns {
        if a.columns.iter().any(|d| d.eq_ignore_ascii_case(c)) && !c.contains('.') {
            cols.push(format!("{pb}.{c}"));
        } else {
            cols.push(c.clone());
        }
    }
    cols
}

/// Cartesian product.
pub fn crossproduct(a: &Relation, b: &Relation) -> Relation {
    let columns = joined_columns(a, b, "left", "right");
    let mut rows = Vec::with_capacity(a.len() * b.len());
    for ra in &a.rows {
        for rb in &b.rows {
            let mut row = ra.clone();
            row.extend(rb.iter().cloned());
            rows.push(row);
        }
    }
    Relation::new(columns, rows)
}

/// Theta join: cross product filtered by `on`; `None` means natural cross.
/// Joins on equality of two columns use a hash path.
pub fn join(a: &Relation, b: &Relation, on: Option<&RowExpr>) -> Result<Relation, RelError> {
    let columns = joined_columns(a, b, "left", "right");
    let out_schema = Relation::empty(columns.clone());
    // Fast path: equi-join on col = col.
    if let Some(RowExpr::Cmp(crate::expr::CmpOp::Eq, l, r)) = on {
        if let (RowExpr::Column(lc), RowExpr::Column(rc)) = (l.as_ref(), r.as_ref()) {
            // Figure out which side each column belongs to.
            let try_sides = |c1: &str, c2: &str| -> Option<(usize, usize)> {
                match (a.resolve(c1), b.resolve(c2)) {
                    (Ok(i), Ok(j)) => Some((i, j)),
                    _ => None,
                }
            };
            if let Some((ia, jb)) = try_sides(lc, rc).or_else(|| try_sides(rc, lc)) {
                use std::collections::BTreeMap;
                let mut index: BTreeMap<OrdDatum, Vec<usize>> = BTreeMap::new();
                for (i, row) in b.rows.iter().enumerate() {
                    if !row[jb].is_null() {
                        index.entry(OrdDatum(row[jb].clone())).or_default().push(i);
                    }
                }
                let mut rows = Vec::new();
                for ra in &a.rows {
                    if ra[ia].is_null() {
                        continue;
                    }
                    if let Some(matches) = index.get(&OrdDatum(ra[ia].clone())) {
                        for &i in matches {
                            let mut row = ra.clone();
                            row.extend(b.rows[i].iter().cloned());
                            rows.push(row);
                        }
                    }
                }
                return Ok(Relation::new(columns, rows));
            }
        }
    }
    // General nested-loop theta join.
    let mut rows = Vec::new();
    for ra in &a.rows {
        for rb in &b.rows {
            let mut row = ra.clone();
            row.extend(rb.iter().cloned());
            let keep = match on {
                Some(pred) => pred.matches(&out_schema, &row)?,
                None => true,
            };
            if keep {
                rows.push(row);
            }
        }
    }
    Ok(Relation::new(columns, rows))
}

/// Filter (the paper's `select`/`filter` spreadsheet function).
pub fn filter(a: &Relation, pred: &RowExpr) -> Result<Relation, RelError> {
    let mut rows = Vec::new();
    for row in &a.rows {
        if pred.matches(a, row)? {
            rows.push(row.clone());
        }
    }
    Ok(Relation::new(a.columns.clone(), rows))
}

/// Project onto named columns (duplicates allowed, order as given).
pub fn project(a: &Relation, cols: &[&str]) -> Result<Relation, RelError> {
    let idx: Vec<usize> = cols
        .iter()
        .map(|c| a.resolve(c))
        .collect::<Result<_, _>>()?;
    let columns = idx.iter().map(|&i| a.columns[i].clone()).collect();
    let rows = a
        .rows
        .iter()
        .map(|row| idx.iter().map(|&i| row[i].clone()).collect())
        .collect();
    Ok(Relation::new(columns, rows))
}

/// Rename one column.
pub fn rename(a: &Relation, from: &str, to: &str) -> Result<Relation, RelError> {
    let i = a.resolve(from)?;
    let mut columns = a.columns.clone();
    columns[i] = to.to_string();
    Ok(Relation::new(columns, a.rows.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r1() -> Relation {
        Relation::new(
            vec!["id".into(), "v".into()],
            vec![
                vec![Datum::Int(1), Datum::Text("a".into())],
                vec![Datum::Int(2), Datum::Text("b".into())],
                vec![Datum::Int(2), Datum::Text("b".into())],
            ],
        )
    }

    fn r2() -> Relation {
        Relation::new(
            vec!["id".into(), "v".into()],
            vec![
                vec![Datum::Int(2), Datum::Text("b".into())],
                vec![Datum::Int(3), Datum::Text("c".into())],
            ],
        )
    }

    #[test]
    fn union_dedups() {
        let u = union(&r1(), &r2()).unwrap();
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn difference_and_intersection() {
        let d = difference(&r1(), &r2()).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.rows[0][0], Datum::Int(1));
        let i = intersection(&r1(), &r2()).unwrap();
        assert_eq!(i.len(), 1);
        assert_eq!(i.rows[0][0], Datum::Int(2));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let narrow = Relation::empty(vec!["x".into()]);
        assert!(union(&r1(), &narrow).is_err());
        assert!(difference(&r1(), &narrow).is_err());
        assert!(intersection(&r1(), &narrow).is_err());
    }

    #[test]
    fn crossproduct_sizes_and_qualified_names() {
        let c = crossproduct(&r1(), &r2());
        assert_eq!(c.len(), 6);
        assert_eq!(c.arity(), 4);
        assert_eq!(c.columns[0], "left.id");
        assert_eq!(c.columns[2], "right.id");
    }

    #[test]
    fn equi_join_matches_nested_loop() {
        let on = RowExpr::col("left.id").eq(RowExpr::col("right.id"));
        let j = join(&r1(), &r2(), Some(&on)).unwrap();
        // id=2 twice on the left × once on the right.
        assert_eq!(j.len(), 2);
        for row in &j.rows {
            assert_eq!(row[0], row[2]);
        }
    }

    #[test]
    fn theta_join_general_predicate() {
        let on = RowExpr::Cmp(
            crate::expr::CmpOp::Lt,
            Box::new(RowExpr::col("left.id")),
            Box::new(RowExpr::col("right.id")),
        );
        let j = join(&r1(), &r2(), Some(&on)).unwrap();
        // left ids 1,2,2 vs right ids 2,3: pairs (1,2),(1,3),(2,3),(2,3).
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn filter_project_rename() {
        let f = filter(&r1(), &RowExpr::col("id").eq(RowExpr::lit(2i64))).unwrap();
        assert_eq!(f.len(), 2);
        let p = project(&r1(), &["v"]).unwrap();
        assert_eq!(p.arity(), 1);
        assert_eq!(p.columns, vec!["v".to_string()]);
        assert!(project(&r1(), &["nope"]).is_err());
        let rn = rename(&r1(), "v", "value").unwrap();
        assert_eq!(rn.columns[1], "value");
        assert!(rename(&r1(), "nope", "x").is_err());
    }

    #[test]
    fn join_skips_nulls() {
        let mut left = r1();
        left.rows.push(vec![Datum::Null, Datum::Text("n".into())]);
        let on = RowExpr::col("left.id").eq(RowExpr::col("right.id"));
        let j = join(&left, &r2(), Some(&on)).unwrap();
        assert_eq!(j.len(), 2, "NULL keys never match");
    }
}
