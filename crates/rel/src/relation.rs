//! Composite table values.

use dataspread_relstore::{Datum, Table};

use crate::RelError;

/// A materialized relation: named columns and rows of datums. This is the
/// "single composite table value" returned by the relational spreadsheet
/// functions (paper §III).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Datum>>,
}

impl Relation {
    pub fn new(columns: Vec<String>, rows: Vec<Vec<Datum>>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == columns.len()));
        Relation { columns, rows }
    }

    pub fn empty(columns: Vec<String>) -> Self {
        Relation {
            columns,
            rows: Vec::new(),
        }
    }

    /// Materialize a stored table.
    pub fn from_table(table: &Table) -> Self {
        Relation {
            columns: table
                .schema()
                .columns()
                .iter()
                .map(|c| c.name.clone())
                .collect(),
            rows: table.scan().map(|(_, row)| row).collect(),
        }
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Resolve a (possibly qualified) column name to an index.
    ///
    /// Accepts an exact match of the stored name, or — when the stored
    /// names are qualified like `t.col` — a unique unqualified suffix.
    pub fn resolve(&self, name: &str) -> Result<usize, RelError> {
        if let Some(i) = self
            .columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
        {
            return Ok(i);
        }
        let suffix_matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.rsplit_once('.')
                    .is_some_and(|(_, tail)| tail.eq_ignore_ascii_case(name))
            })
            .map(|(i, _)| i)
            .collect();
        match suffix_matches.as_slice() {
            [i] => Ok(*i),
            [] => Err(RelError::BadColumn(name.to_string())),
            _ => Err(RelError::BadColumn(format!("{name} is ambiguous"))),
        }
    }

    /// The `index(table, i, j)` accessor (1-based, like the paper's
    /// spreadsheet function): row `i`, column `j`.
    pub fn index(&self, i: usize, j: usize) -> Option<&Datum> {
        if i == 0 || j == 0 {
            return None;
        }
        self.rows.get(i - 1)?.get(j - 1)
    }

    /// Render as an aligned text table (examples and the qualitative
    /// evaluation use this).
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(|d| d.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.columns.to_vec(), &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        out.push('\n');
        for row in &rendered {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Total ordering over datums for ORDER BY / grouping / set operations:
/// NULL < numbers (by value) < text < bool.
pub fn cmp_datum(a: &Datum, b: &Datum) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    fn kind(d: &Datum) -> u8 {
        match d {
            Datum::Null => 0,
            Datum::Int(_) | Datum::Float(_) => 1,
            Datum::Text(_) => 2,
            Datum::Bool(_) => 3,
        }
    }
    match (a, b) {
        (Datum::Null, Datum::Null) => Ordering::Equal,
        (Datum::Text(x), Datum::Text(y)) => x.cmp(y),
        (Datum::Bool(x), Datum::Bool(y)) => x.cmp(y),
        _ if kind(a) == 1 && kind(b) == 1 => {
            let x = a.as_f64().expect("numeric");
            let y = b.as_f64().expect("numeric");
            x.partial_cmp(&y).unwrap_or(Ordering::Equal)
        }
        _ => kind(a).cmp(&kind(b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel() -> Relation {
        Relation::new(
            vec!["id".into(), "name".into()],
            vec![
                vec![Datum::Int(1), Datum::Text("a".into())],
                vec![Datum::Int(2), Datum::Text("b".into())],
            ],
        )
    }

    #[test]
    fn resolve_plain_and_qualified() {
        let r = rel();
        assert_eq!(r.resolve("id").unwrap(), 0);
        assert_eq!(r.resolve("NAME").unwrap(), 1);
        assert!(r.resolve("missing").is_err());
        let q = Relation::empty(vec!["t1.id".into(), "t2.id".into(), "t2.x".into()]);
        assert_eq!(q.resolve("t1.id").unwrap(), 0);
        assert_eq!(q.resolve("x").unwrap(), 2);
        assert!(matches!(q.resolve("id"), Err(RelError::BadColumn(_))));
    }

    #[test]
    fn one_based_index_accessor() {
        let r = rel();
        assert_eq!(r.index(1, 1), Some(&Datum::Int(1)));
        assert_eq!(r.index(2, 2), Some(&Datum::Text("b".into())));
        assert_eq!(r.index(0, 1), None);
        assert_eq!(r.index(3, 1), None);
    }

    #[test]
    fn datum_ordering() {
        use std::cmp::Ordering::*;
        assert_eq!(cmp_datum(&Datum::Null, &Datum::Int(0)), Less);
        assert_eq!(cmp_datum(&Datum::Int(2), &Datum::Float(2.0)), Equal);
        assert_eq!(cmp_datum(&Datum::Int(3), &Datum::Float(2.5)), Greater);
        assert_eq!(
            cmp_datum(&Datum::Text("a".into()), &Datum::Text("b".into())),
            Less
        );
        assert_eq!(cmp_datum(&Datum::Int(999), &Datum::Text("".into())), Less);
    }

    #[test]
    fn text_rendering_aligns() {
        let txt = rel().to_text();
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("id"));
        assert!(lines[2].contains('1'));
        assert_eq!(lines[0].len(), lines[2].len());
    }
}
