//! A mini-SQL `SELECT` engine (paper §VI, Appendix B: the `sql(query,
//! param…)` spreadsheet function).
//!
//! Supported subset: `SELECT [DISTINCT] items FROM t [alias] (JOIN t2 ON
//! expr)* [WHERE expr] [GROUP BY exprs] [HAVING expr] [ORDER BY keys
//! [ASC|DESC]] [LIMIT n]` with aggregates COUNT/SUM/AVG/MIN/MAX and `?`
//! prepared-statement parameters. Equi-joins take a hash path; everything
//! else is a scan — honest for a storage-engine testbed.

use std::collections::BTreeMap;

use dataspread_relstore::{Database, Datum};

use crate::expr::{AggFunc, ArithOp, CmpOp, RowExpr};
use crate::relation::{cmp_datum, Relation};
use crate::RelError;

/// Source of named relations for `FROM` clauses.
pub trait TableProvider {
    fn relation(&self, name: &str) -> Option<Relation>;
}

impl TableProvider for Database {
    fn relation(&self, name: &str) -> Option<Relation> {
        self.table(name).ok().map(Relation::from_table)
    }
}

impl TableProvider for std::collections::HashMap<String, Relation> {
    fn relation(&self, name: &str) -> Option<Relation> {
        self.get(name).cloned()
    }
}

/// Execute a SELECT statement with `?` parameters.
pub fn execute_sql(
    provider: &dyn TableProvider,
    query: &str,
    params: &[Datum],
) -> Result<Relation, RelError> {
    let stmt = Parser::new(query)?.select_stmt()?;
    stmt.execute(provider, params)
}

// ---------------------------------------------------------------- tokens --

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Str(String),
    Symbol(&'static str),
    Param,
}

fn keyword(t: &Tok, kw: &str) -> bool {
    matches!(t, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
}

fn lex(src: &str) -> Result<Vec<Tok>, RelError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'?' => {
                out.push(Tok::Param);
                i += 1;
            }
            b'(' | b')' | b',' | b'*' | b'+' | b'-' | b'/' | b'.' => {
                let s = match b[i] {
                    b'(' => "(",
                    b')' => ")",
                    b',' => ",",
                    b'*' => "*",
                    b'+' => "+",
                    b'-' => "-",
                    b'/' => "/",
                    _ => ".",
                };
                out.push(Tok::Symbol(s));
                i += 1;
            }
            b'=' => {
                out.push(Tok::Symbol("="));
                i += 1;
            }
            b'<' => {
                if b.get(i + 1) == Some(&b'>') {
                    out.push(Tok::Symbol("<>"));
                    i += 2;
                } else if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Symbol("<="));
                    i += 2;
                } else {
                    out.push(Tok::Symbol("<"));
                    i += 1;
                }
            }
            b'>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push(Tok::Symbol(">="));
                    i += 2;
                } else {
                    out.push(Tok::Symbol(">"));
                    i += 1;
                }
            }
            b'!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Symbol("<>"));
                i += 2;
            }
            b'\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match b.get(i) {
                        Some(b'\'') if b.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            let len = src[i..].chars().next().expect("in bounds").len_utf8();
                            s.push_str(&src[i..i + len]);
                            i += len;
                        }
                        None => return Err(RelError::Syntax("unterminated string".into())),
                    }
                }
                out.push(Tok::Str(s));
            }
            b'0'..=b'9' => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'.') {
                    j += 1;
                }
                let n: f64 = src[i..j]
                    .parse()
                    .map_err(|_| RelError::Syntax(format!("bad number {:?}", &src[i..j])))?;
                out.push(Tok::Number(n));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                out.push(Tok::Ident(src[i..j].to_string()));
                i = j;
            }
            c => {
                return Err(RelError::Syntax(format!(
                    "unexpected character {:?}",
                    c as char
                )))
            }
        }
    }
    Ok(out)
}

// ----------------------------------------------------------------- parser --

#[derive(Debug, Clone)]
struct SelectItem {
    expr: RowExpr,
    alias: Option<String>,
    star: bool,
}

#[derive(Debug, Clone)]
struct JoinClause {
    table: String,
    alias: Option<String>,
    on: Option<RowExpr>,
}

#[derive(Debug, Clone)]
struct OrderKey {
    expr: OrderTarget,
    desc: bool,
}

#[derive(Debug, Clone)]
enum OrderTarget {
    /// Output column name.
    Name(String),
    /// 1-based output position.
    Position(usize),
}

#[derive(Debug, Clone)]
struct SelectStmt {
    distinct: bool,
    items: Vec<SelectItem>,
    from: (String, Option<String>),
    joins: Vec<JoinClause>,
    filter: Option<RowExpr>,
    group_by: Vec<RowExpr>,
    having: Option<RowExpr>,
    order_by: Vec<OrderKey>,
    limit: Option<usize>,
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Self, RelError> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if self.peek()
            == Some(&Tok::Symbol(match s {
                "(" => "(",
                ")" => ")",
                "," => ",",
                "*" => "*",
                "." => ".",
                _ => return self.eat_symbol_slow(s),
            }))
        {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_symbol_slow(&mut self, s: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Symbol(t)) if *t == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| keyword(t, kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), RelError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(RelError::Syntax(format!("expected {kw}")))
        }
    }

    fn ident(&mut self) -> Result<String, RelError> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(RelError::Syntax(format!(
                "expected identifier, got {other:?}"
            ))),
        }
    }

    /// Table name with optional alias (bare identifier or `AS ident`).
    fn table_ref(&mut self) -> Result<(String, Option<String>), RelError> {
        let name = self.ident()?;
        if self.eat_keyword("AS") {
            return Ok((name, Some(self.ident()?)));
        }
        // Bare alias: an identifier that isn't a clause keyword.
        if let Some(Tok::Ident(s)) = self.peek() {
            let is_kw = [
                "JOIN", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "ON", "INNER",
            ]
            .iter()
            .any(|k| s.eq_ignore_ascii_case(k));
            if !is_kw {
                let alias = s.clone();
                self.pos += 1;
                return Ok((name, Some(alias)));
            }
        }
        Ok((name, None))
    }

    fn select_stmt(&mut self) -> Result<SelectStmt, RelError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.eat_symbol("*") {
                items.push(SelectItem {
                    expr: RowExpr::Literal(Datum::Null),
                    alias: None,
                    star: true,
                });
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem {
                    expr,
                    alias,
                    star: false,
                });
            }
            if !self.eat_symbol(",") {
                break;
            }
        }
        self.expect_keyword("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            let _ = self.eat_keyword("INNER");
            if !self.eat_keyword("JOIN") {
                break;
            }
            let (table, alias) = self.table_ref()?;
            let on = if self.eat_keyword("ON") {
                Some(self.expr()?)
            } else {
                None
            };
            joins.push(JoinClause { table, alias, on });
        }
        let filter = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let target = match self.peek() {
                    Some(Tok::Number(n)) => {
                        let n = *n;
                        self.pos += 1;
                        OrderTarget::Position(n as usize)
                    }
                    _ => {
                        // Column, possibly qualified.
                        let mut name = self.ident()?;
                        if self.eat_symbol(".") {
                            name = format!("{name}.{}", self.ident()?);
                        }
                        OrderTarget::Name(name)
                    }
                };
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    let _ = self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderKey { expr: target, desc });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.bump() {
                Some(Tok::Number(n)) if n >= 0.0 => Some(n as usize),
                _ => return Err(RelError::Syntax("expected LIMIT count".into())),
            }
        } else {
            None
        };
        if self.pos != self.toks.len() {
            return Err(RelError::Syntax("trailing tokens after statement".into()));
        }
        Ok(SelectStmt {
            distinct,
            items,
            from,
            joins,
            filter,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    // Expression precedence: OR < AND < NOT < cmp < add < mul < unary.
    fn expr(&mut self) -> Result<RowExpr, RelError> {
        let mut lhs = self.and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.and_expr()?;
            lhs = RowExpr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<RowExpr, RelError> {
        let mut lhs = self.not_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.not_expr()?;
            lhs = RowExpr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<RowExpr, RelError> {
        if self.eat_keyword("NOT") {
            Ok(RowExpr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<RowExpr, RelError> {
        let lhs = self.add_expr()?;
        // IS [NOT] NULL postfix.
        if self.eat_keyword("IS") {
            let not = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(RowExpr::IsNull(Box::new(lhs), !not));
        }
        let op = match self.peek() {
            Some(Tok::Symbol("=")) => CmpOp::Eq,
            Some(Tok::Symbol("<>")) => CmpOp::Ne,
            Some(Tok::Symbol("<")) => CmpOp::Lt,
            Some(Tok::Symbol("<=")) => CmpOp::Le,
            Some(Tok::Symbol(">")) => CmpOp::Gt,
            Some(Tok::Symbol(">=")) => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.add_expr()?;
        Ok(RowExpr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<RowExpr, RelError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Symbol("+")) => ArithOp::Add,
                Some(Tok::Symbol("-")) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = RowExpr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<RowExpr, RelError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Symbol("*")) => ArithOp::Mul,
                Some(Tok::Symbol("/")) => ArithOp::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = RowExpr::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<RowExpr, RelError> {
        if self.eat_symbol_slow("-") {
            let e = self.unary_expr()?;
            return Ok(RowExpr::Arith(
                ArithOp::Sub,
                Box::new(RowExpr::Literal(Datum::Int(0))),
                Box::new(e),
            ));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<RowExpr, RelError> {
        match self.bump() {
            Some(Tok::Number(n)) => Ok(RowExpr::Literal(if n.fract() == 0.0 {
                Datum::Int(n as i64)
            } else {
                Datum::Float(n)
            })),
            Some(Tok::Str(s)) => Ok(RowExpr::Literal(Datum::Text(s))),
            Some(Tok::Param) => {
                // Number params positionally in appearance order.
                let idx = self
                    .toks
                    .iter()
                    .take(self.pos - 1)
                    .filter(|t| **t == Tok::Param)
                    .count();
                Ok(RowExpr::Param(idx))
            }
            Some(Tok::Symbol("(")) => {
                let e = self.expr()?;
                if !self.eat_symbol(")") {
                    return Err(RelError::Syntax("expected )".into()));
                }
                Ok(e)
            }
            Some(Tok::Ident(name)) => {
                let upper = name.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => return Ok(RowExpr::Literal(Datum::Null)),
                    "TRUE" => return Ok(RowExpr::Literal(Datum::Bool(true))),
                    "FALSE" => return Ok(RowExpr::Literal(Datum::Bool(false))),
                    _ => {}
                }
                // Aggregate call?
                let agg = match upper.as_str() {
                    "COUNT" => Some(AggFunc::Count),
                    "SUM" => Some(AggFunc::Sum),
                    "AVG" => Some(AggFunc::Avg),
                    "MIN" => Some(AggFunc::Min),
                    "MAX" => Some(AggFunc::Max),
                    _ => None,
                };
                if let Some(f) = agg {
                    if self.eat_symbol("(") {
                        let arg = if self.eat_symbol("*") {
                            None
                        } else {
                            Some(Box::new(self.expr()?))
                        };
                        if !self.eat_symbol(")") {
                            return Err(RelError::Syntax("expected ) after aggregate".into()));
                        }
                        return Ok(RowExpr::Aggregate(f, arg));
                    }
                }
                // Qualified column `t.col`.
                if self.eat_symbol(".") {
                    let col = self.ident()?;
                    return Ok(RowExpr::Column(format!("{name}.{col}")));
                }
                Ok(RowExpr::Column(name))
            }
            other => Err(RelError::Syntax(format!("unexpected token {other:?}"))),
        }
    }
}

// --------------------------------------------------------------- executor --

/// Qualify a relation's columns with an alias (`alias.col`).
fn qualify(mut rel: Relation, alias: &str) -> Relation {
    for c in &mut rel.columns {
        if !c.contains('.') {
            *c = format!("{alias}.{c}");
        }
    }
    rel
}

/// Join with already-qualified schemas (concatenated as-is).
fn join_qualified(a: Relation, b: Relation, on: Option<&RowExpr>) -> Result<Relation, RelError> {
    let mut columns = a.columns.clone();
    columns.extend(b.columns.iter().cloned());
    let out = Relation::empty(columns.clone());
    // Hash path for col = col.
    if let Some(RowExpr::Cmp(CmpOp::Eq, l, r)) = on {
        if let (RowExpr::Column(lc), RowExpr::Column(rc)) = (l.as_ref(), r.as_ref()) {
            let sides = |c1: &str, c2: &str| -> Option<(usize, usize)> {
                match (a.resolve(c1), b.resolve(c2)) {
                    (Ok(i), Ok(j)) => Some((i, j)),
                    _ => None,
                }
            };
            if let Some((ia, jb)) = sides(lc, rc).or_else(|| sides(rc, lc)) {
                let mut index: BTreeMap<Vec<u8>, Vec<usize>> = BTreeMap::new();
                for (i, row) in b.rows.iter().enumerate() {
                    if !row[jb].is_null() {
                        index.entry(hash_key(&row[jb])).or_default().push(i);
                    }
                }
                let mut rows = Vec::new();
                for ra in &a.rows {
                    if ra[ia].is_null() {
                        continue;
                    }
                    if let Some(hits) = index.get(&hash_key(&ra[ia])) {
                        for &i in hits {
                            let mut row = ra.clone();
                            row.extend(b.rows[i].iter().cloned());
                            rows.push(row);
                        }
                    }
                }
                return Ok(Relation::new(columns, rows));
            }
        }
    }
    let mut rows = Vec::new();
    for ra in &a.rows {
        for rb in &b.rows {
            let mut row = ra.clone();
            row.extend(rb.iter().cloned());
            let keep = match on {
                Some(p) => p.matches(&out, &row)?,
                None => true,
            };
            if keep {
                rows.push(row);
            }
        }
    }
    Ok(Relation::new(columns, rows))
}

/// Order-preserving byte key for join hashing (ints and equal floats
/// collide as intended).
fn hash_key(d: &Datum) -> Vec<u8> {
    match d {
        Datum::Null => vec![0],
        Datum::Int(i) => {
            let mut v = vec![1];
            v.extend((*i as f64).to_le_bytes());
            v
        }
        Datum::Float(f) => {
            let mut v = vec![1];
            v.extend(f.to_le_bytes());
            v
        }
        Datum::Text(s) => {
            let mut v = vec![2];
            v.extend(s.as_bytes());
            v
        }
        Datum::Bool(b) => vec![3, *b as u8],
    }
}

/// Evaluate a select item over a group of rows (aggregate context).
fn eval_grouped(
    expr: &RowExpr,
    schema: &Relation,
    group: &[&Vec<Datum>],
) -> Result<Datum, RelError> {
    match expr {
        RowExpr::Aggregate(f, arg) => {
            let values: Vec<Datum> = match arg {
                None => return Ok(Datum::Int(group.len() as i64)), // COUNT(*)
                Some(e) => group
                    .iter()
                    .map(|row| e.eval(schema, row))
                    .collect::<Result<_, _>>()?,
            };
            let non_null: Vec<&Datum> = values.iter().filter(|d| !d.is_null()).collect();
            Ok(match f {
                AggFunc::Count => Datum::Int(non_null.len() as i64),
                AggFunc::Sum => {
                    if non_null.is_empty() {
                        Datum::Null
                    } else if non_null.iter().all(|d| matches!(d, Datum::Int(_))) {
                        Datum::Int(non_null.iter().filter_map(|d| d.as_i64()).sum())
                    } else {
                        Datum::Float(non_null.iter().filter_map(|d| d.as_f64()).sum())
                    }
                }
                AggFunc::Avg => {
                    if non_null.is_empty() {
                        Datum::Null
                    } else {
                        let sum: f64 = non_null.iter().filter_map(|d| d.as_f64()).sum();
                        Datum::Float(sum / non_null.len() as f64)
                    }
                }
                AggFunc::Min => non_null
                    .iter()
                    .min_by(|a, b| cmp_datum(a, b))
                    .map(|d| (*d).clone())
                    .unwrap_or(Datum::Null),
                AggFunc::Max => non_null
                    .iter()
                    .max_by(|a, b| cmp_datum(a, b))
                    .map(|d| (*d).clone())
                    .unwrap_or(Datum::Null),
            })
        }
        RowExpr::Cmp(op, a, b) => {
            let bound = RowExpr::Cmp(
                *op,
                Box::new(RowExpr::Literal(eval_grouped(a, schema, group)?)),
                Box::new(RowExpr::Literal(eval_grouped(b, schema, group)?)),
            );
            bound.eval(schema, group.first().map(|r| r.as_slice()).unwrap_or(&[]))
        }
        RowExpr::Arith(op, a, b) => {
            let bound = RowExpr::Arith(
                *op,
                Box::new(RowExpr::Literal(eval_grouped(a, schema, group)?)),
                Box::new(RowExpr::Literal(eval_grouped(b, schema, group)?)),
            );
            bound.eval(schema, group.first().map(|r| r.as_slice()).unwrap_or(&[]))
        }
        RowExpr::And(a, b) | RowExpr::Or(a, b) => {
            let is_and = matches!(expr, RowExpr::And(..));
            let x = eval_grouped(a, schema, group)?;
            let y = eval_grouped(b, schema, group)?;
            let xb = matches!(x, Datum::Bool(true));
            let yb = matches!(y, Datum::Bool(true));
            Ok(Datum::Bool(if is_and { xb && yb } else { xb || yb }))
        }
        // Plain columns in an aggregate context take the group's first row
        // (the relaxed SQLite-style semantics).
        other => match group.first() {
            Some(row) => other.eval(schema, row),
            None => Ok(Datum::Null),
        },
    }
}

/// Output name for an unaliased select item.
fn derived_name(expr: &RowExpr, idx: usize) -> String {
    match expr {
        RowExpr::Column(c) => c
            .rsplit_once('.')
            .map(|(_, tail)| tail.to_string())
            .unwrap_or_else(|| c.clone()),
        RowExpr::Aggregate(f, arg) => {
            let fname = match f {
                AggFunc::Count => "count",
                AggFunc::Sum => "sum",
                AggFunc::Avg => "avg",
                AggFunc::Min => "min",
                AggFunc::Max => "max",
            };
            match arg {
                Some(a) => format!("{fname}({})", derived_name(a, idx)),
                None => format!("{fname}(*)"),
            }
        }
        _ => format!("col{}", idx + 1),
    }
}

impl SelectStmt {
    fn execute(
        &self,
        provider: &dyn TableProvider,
        params: &[Datum],
    ) -> Result<Relation, RelError> {
        // Check parameter count across the whole statement.
        // (Binding errors below also catch missing params.)
        // FROM + JOINs.
        let (name, alias) = &self.from;
        let base = provider
            .relation(name)
            .ok_or_else(|| RelError::NoSuchTable(name.clone()))?;
        let mut current = qualify(base, alias.as_deref().unwrap_or(name));
        for j in &self.joins {
            let right = provider
                .relation(&j.table)
                .ok_or_else(|| RelError::NoSuchTable(j.table.clone()))?;
            let right = qualify(right, j.alias.as_deref().unwrap_or(&j.table));
            let on = match &j.on {
                Some(e) => Some(e.bind(params)?),
                None => None,
            };
            current = join_qualified(current, right, on.as_ref())?;
        }
        // WHERE.
        if let Some(pred) = &self.filter {
            let pred = pred.bind(params)?;
            let mut rows = Vec::new();
            for row in &current.rows {
                if pred.matches(&current, row)? {
                    rows.push(row.clone());
                }
            }
            current.rows = rows;
        }
        // Expand stars and bind item params.
        let mut items: Vec<(RowExpr, String)> = Vec::new();
        for (i, item) in self.items.iter().enumerate() {
            if item.star {
                for c in &current.columns {
                    items.push((
                        RowExpr::Column(c.clone()),
                        derived_name(&RowExpr::Column(c.clone()), 0),
                    ));
                }
            } else {
                let e = item.expr.bind(params)?;
                let name = item.alias.clone().unwrap_or_else(|| derived_name(&e, i));
                items.push((e, name));
            }
        }
        let needs_group =
            !self.group_by.is_empty() || items.iter().any(|(e, _)| e.contains_aggregate());
        // Kept for ORDER BY keys that reference non-projected columns
        // (valid SQL for non-grouped, non-DISTINCT queries).
        let pre_projection = if needs_group || self.distinct {
            None
        } else {
            Some(current.clone())
        };
        let mut out = if needs_group {
            // Group rows.
            let keys: Vec<RowExpr> = self
                .group_by
                .iter()
                .map(|e| e.bind(params))
                .collect::<Result<_, _>>()?;
            let mut groups: BTreeMap<Vec<Vec<u8>>, Vec<&Vec<Datum>>> = BTreeMap::new();
            for row in &current.rows {
                let mut key = Vec::with_capacity(keys.len());
                for k in &keys {
                    key.push(hash_key(&k.eval(&current, row)?));
                }
                groups.entry(key).or_default().push(row);
            }
            // A global aggregate over an empty table still yields one row.
            if groups.is_empty() && keys.is_empty() {
                groups.insert(Vec::new(), Vec::new());
            }
            let having = match &self.having {
                Some(h) => Some(h.bind(params)?),
                None => None,
            };
            let mut rows = Vec::new();
            for group in groups.values() {
                if let Some(h) = &having {
                    if !matches!(eval_grouped(h, &current, group)?, Datum::Bool(true)) {
                        continue;
                    }
                }
                let mut row = Vec::with_capacity(items.len());
                for (e, _) in &items {
                    row.push(eval_grouped(e, &current, group)?);
                }
                rows.push(row);
            }
            Relation::new(items.iter().map(|(_, n)| n.clone()).collect(), rows)
        } else {
            let mut rows = Vec::with_capacity(current.rows.len());
            for row in &current.rows {
                let mut out_row = Vec::with_capacity(items.len());
                for (e, _) in &items {
                    out_row.push(e.eval(&current, row)?);
                }
                rows.push(out_row);
            }
            Relation::new(items.iter().map(|(_, n)| n.clone()).collect(), rows)
        };
        // DISTINCT.
        if self.distinct {
            let mut seen = std::collections::BTreeSet::new();
            out.rows.retain(|row| {
                let key: Vec<Vec<u8>> = row.iter().map(hash_key).collect();
                seen.insert(key)
            });
        }
        // ORDER BY: keys resolve against the output columns first, then —
        // for plain row-wise queries — against the pre-projection schema
        // (e.g. `SELECT name FROM t ORDER BY age`).
        if !self.order_by.is_empty() {
            let n_rows = out.rows.len();
            // sort_keys[row] = the datums to order this row by.
            let mut sort_keys: Vec<Vec<Datum>> = vec![Vec::new(); n_rows];
            let mut descs = Vec::new();
            for k in &self.order_by {
                descs.push(k.desc);
                match &k.expr {
                    OrderTarget::Position(p) => {
                        if *p == 0 || *p > out.arity() {
                            return Err(RelError::BadColumn(format!("ORDER BY position {p}")));
                        }
                        for (keys, row) in sort_keys.iter_mut().zip(&out.rows) {
                            keys.push(row[p - 1].clone());
                        }
                    }
                    OrderTarget::Name(n) => match out.resolve(n) {
                        Ok(i) => {
                            for (keys, row) in sort_keys.iter_mut().zip(&out.rows) {
                                keys.push(row[i].clone());
                            }
                        }
                        Err(e) => {
                            let Some(pre) = &pre_projection else {
                                return Err(e);
                            };
                            let i = pre.resolve(n)?;
                            for (keys, row) in sort_keys.iter_mut().zip(&pre.rows) {
                                keys.push(row[i].clone());
                            }
                        }
                    },
                }
            }
            let mut perm: Vec<usize> = (0..n_rows).collect();
            perm.sort_by(|&x, &y| {
                for (j, desc) in descs.iter().enumerate() {
                    let ord = cmp_datum(&sort_keys[x][j], &sort_keys[y][j]);
                    if ord != std::cmp::Ordering::Equal {
                        return if *desc { ord.reverse() } else { ord };
                    }
                }
                std::cmp::Ordering::Equal
            });
            out.rows = perm.into_iter().map(|i| out.rows[i].clone()).collect();
        }
        // LIMIT.
        if let Some(n) = self.limit {
            out.rows.truncate(n);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn db() -> HashMap<String, Relation> {
        let mut m = HashMap::new();
        m.insert(
            "invoice".to_string(),
            Relation::new(
                vec!["id".into(), "supp_id".into(), "amount".into()],
                vec![
                    vec![Datum::Int(1), Datum::Int(10), Datum::Float(100.0)],
                    vec![Datum::Int(2), Datum::Int(10), Datum::Float(250.0)],
                    vec![Datum::Int(3), Datum::Int(20), Datum::Float(75.0)],
                    vec![Datum::Int(4), Datum::Int(30), Datum::Null],
                ],
            ),
        );
        m.insert(
            "supp".to_string(),
            Relation::new(
                vec!["id".into(), "name".into()],
                vec![
                    vec![Datum::Int(10), Datum::Text("acme".into())],
                    vec![Datum::Int(20), Datum::Text("globex".into())],
                ],
            ),
        );
        m
    }

    fn run(q: &str) -> Relation {
        execute_sql(&db(), q, &[]).unwrap()
    }

    #[test]
    fn select_star_where() {
        let r = run("SELECT * FROM invoice WHERE amount > 80");
        assert_eq!(r.len(), 2);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.columns[0], "id");
    }

    #[test]
    fn projection_and_alias() {
        let r = run("SELECT id AS invoice_id, amount * 2 AS dbl FROM invoice WHERE id = 1");
        assert_eq!(r.columns, vec!["invoice_id".to_string(), "dbl".to_string()]);
        assert_eq!(r.rows[0], vec![Datum::Int(1), Datum::Float(200.0)]);
    }

    #[test]
    fn join_with_qualified_columns() {
        let r = run(
            "SELECT supp.name, invoice.amount FROM invoice JOIN supp ON invoice.supp_id = supp.id ORDER BY 2 DESC",
        );
        assert_eq!(r.len(), 3);
        assert_eq!(r.rows[0][1], Datum::Float(250.0));
        assert_eq!(r.rows[0][0], Datum::Text("acme".into()));
    }

    #[test]
    fn group_by_aggregates() {
        let r = run(
            "SELECT supp_id, COUNT(*) AS n, SUM(amount) AS total FROM invoice GROUP BY supp_id ORDER BY supp_id",
        );
        assert_eq!(r.len(), 3);
        assert_eq!(
            r.rows[0],
            vec![Datum::Int(10), Datum::Int(2), Datum::Float(350.0)]
        );
        // NULL amounts are skipped by SUM → group 30 sums to NULL.
        assert_eq!(r.rows[2][2], Datum::Null);
    }

    #[test]
    fn global_aggregate_without_group_by() {
        let r = run("SELECT COUNT(*), AVG(amount) FROM invoice");
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Datum::Int(4));
        let Datum::Float(avg) = r.rows[0][1] else {
            panic!("avg should be float")
        };
        assert!(
            (avg - (100.0 + 250.0 + 75.0) / 3.0).abs() < 1e-9,
            "NULL skipped"
        );
    }

    #[test]
    fn having_filters_groups() {
        let r = run("SELECT supp_id FROM invoice GROUP BY supp_id HAVING COUNT(*) > 1");
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Datum::Int(10));
    }

    #[test]
    fn prepared_statement_params() {
        let r = execute_sql(
            &db(),
            "SELECT id FROM invoice WHERE amount > ? AND supp_id = ?",
            &[Datum::Float(50.0), Datum::Int(10)],
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        let err = execute_sql(&db(), "SELECT id FROM invoice WHERE amount > ?", &[]);
        assert!(matches!(err, Err(RelError::ParamCount { .. })));
    }

    #[test]
    fn distinct_and_limit() {
        let r = run("SELECT DISTINCT supp_id FROM invoice ORDER BY supp_id LIMIT 2");
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][0], Datum::Int(10));
        assert_eq!(r.rows[1][0], Datum::Int(20));
    }

    #[test]
    fn is_null_and_not() {
        let r = run("SELECT id FROM invoice WHERE amount IS NULL");
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Datum::Int(4));
        let r = run("SELECT id FROM invoice WHERE NOT amount IS NULL");
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn errors_are_reported() {
        assert!(matches!(
            execute_sql(&db(), "SELECT * FROM missing", &[]),
            Err(RelError::NoSuchTable(_))
        ));
        assert!(matches!(
            execute_sql(&db(), "SELECT nope FROM invoice", &[]),
            Err(RelError::BadColumn(_))
        ));
        assert!(matches!(
            execute_sql(&db(), "SELEC * FROM invoice", &[]),
            Err(RelError::Syntax(_))
        ));
        assert!(matches!(
            execute_sql(&db(), "SELECT * FROM invoice WHERE", &[]),
            Err(RelError::Syntax(_))
        ));
    }

    #[test]
    fn table_aliases() {
        let r =
            run("SELECT i.id FROM invoice i JOIN supp s ON i.supp_id = s.id WHERE s.name = 'acme'");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn string_escapes() {
        let r = run("SELECT id FROM supp WHERE name = 'o''brien'");
        assert_eq!(r.len(), 0);
    }
}
