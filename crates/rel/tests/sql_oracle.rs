//! Property tests for the SQL engine against hand-rolled oracles.

use std::collections::HashMap;

use proptest::prelude::*;

use dataspread_rel::relation::cmp_datum;
use dataspread_rel::{execute_sql, Relation};
use dataspread_relstore::Datum;

fn table(rows: &[(i64, i64, Option<&str>)]) -> Relation {
    Relation::new(
        vec!["a".into(), "b".into(), "s".into()],
        rows.iter()
            .map(|(a, b, s)| {
                vec![
                    Datum::Int(*a),
                    Datum::Int(*b),
                    match s {
                        Some(s) => Datum::Text(s.to_string()),
                        None => Datum::Null,
                    },
                ]
            })
            .collect(),
    )
}

fn provider(rel: Relation) -> HashMap<String, Relation> {
    let mut m = HashMap::new();
    m.insert("t".to_string(), rel);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn where_matches_manual_filter(
        rows in prop::collection::vec((any::<i16>(), any::<i16>()), 0..60),
        threshold in any::<i16>(),
    ) {
        let data: Vec<(i64, i64, Option<&str>)> = rows
            .iter()
            .map(|(a, b)| (*a as i64, *b as i64, None))
            .collect();
        let rel = table(&data);
        let got = execute_sql(
            &provider(rel.clone()),
            "SELECT a, b FROM t WHERE a > ? AND b <= a",
            &[Datum::Int(threshold as i64)],
        )
        .unwrap();
        let want: Vec<(i64, i64)> = data
            .iter()
            .filter(|(a, b, _)| *a > threshold as i64 && *b <= *a)
            .map(|(a, b, _)| (*a, *b))
            .collect();
        let got_rows: Vec<(i64, i64)> = got
            .rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        prop_assert_eq!(got_rows, want);
    }

    #[test]
    fn order_by_really_sorts(rows in prop::collection::vec((any::<i16>(), any::<i16>()), 0..60)) {
        let data: Vec<(i64, i64, Option<&str>)> = rows
            .iter()
            .map(|(a, b)| (*a as i64, *b as i64, None))
            .collect();
        let got = execute_sql(
            &provider(table(&data)),
            "SELECT a, b FROM t ORDER BY a DESC, b ASC",
            &[],
        )
        .unwrap();
        prop_assert_eq!(got.len(), data.len());
        for w in got.rows.windows(2) {
            let (a1, b1) = (w[0][0].as_i64().unwrap(), w[0][1].as_i64().unwrap());
            let (a2, b2) = (w[1][0].as_i64().unwrap(), w[1][1].as_i64().unwrap());
            prop_assert!(a1 > a2 || (a1 == a2 && b1 <= b2), "({a1},{b1}) then ({a2},{b2})");
        }
    }

    #[test]
    fn group_by_sums_match_manual(rows in prop::collection::vec((0i64..6, any::<i16>()), 0..80)) {
        let data: Vec<(i64, i64, Option<&str>)> =
            rows.iter().map(|(a, b)| (*a, *b as i64, None)).collect();
        let got = execute_sql(
            &provider(table(&data)),
            "SELECT a, SUM(b) AS total, COUNT(*) AS n FROM t GROUP BY a ORDER BY a",
            &[],
        )
        .unwrap();
        let mut manual: std::collections::BTreeMap<i64, (i64, i64)> = Default::default();
        for (a, b, _) in &data {
            let e = manual.entry(*a).or_insert((0, 0));
            e.0 += b;
            e.1 += 1;
        }
        prop_assert_eq!(got.len(), manual.len());
        for (row, (key, (sum, n))) in got.rows.iter().zip(manual) {
            prop_assert_eq!(row[0].as_i64().unwrap(), key);
            prop_assert_eq!(row[1].as_i64().unwrap(), sum);
            prop_assert_eq!(row[2].as_i64().unwrap(), n);
        }
    }

    #[test]
    fn join_matches_nested_loop(
        left in prop::collection::vec((0i64..8, any::<i16>()), 0..30),
        right in prop::collection::vec((0i64..8, any::<i16>()), 0..30),
    ) {
        let mut m = HashMap::new();
        m.insert(
            "l".to_string(),
            Relation::new(
                vec!["k".into(), "v".into()],
                left.iter().map(|(k, v)| vec![Datum::Int(*k), Datum::Int(*v as i64)]).collect(),
            ),
        );
        m.insert(
            "r".to_string(),
            Relation::new(
                vec!["k".into(), "w".into()],
                right.iter().map(|(k, w)| vec![Datum::Int(*k), Datum::Int(*w as i64)]).collect(),
            ),
        );
        let got = execute_sql(&m, "SELECT l.v, r.w FROM l JOIN r ON l.k = r.k", &[]).unwrap();
        let mut want = Vec::new();
        for (lk, lv) in &left {
            for (rk, rw) in &right {
                if lk == rk {
                    want.push((*lv as i64, *rw as i64));
                }
            }
        }
        let mut got_rows: Vec<(i64, i64)> = got
            .rows
            .iter()
            .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
            .collect();
        got_rows.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got_rows, want);
    }

    #[test]
    fn distinct_and_limit_invariants(
        rows in prop::collection::vec((0i64..5, 0i64..5), 0..60),
        limit in 0usize..20,
    ) {
        let data: Vec<(i64, i64, Option<&str>)> =
            rows.iter().map(|(a, b)| (*a, *b, None)).collect();
        let rel = table(&data);
        let got = execute_sql(
            &provider(rel),
            &format!("SELECT DISTINCT a, b FROM t LIMIT {limit}"),
            &[],
        )
        .unwrap();
        prop_assert!(got.len() <= limit);
        // No duplicates.
        let mut seen = std::collections::BTreeSet::new();
        for row in &got.rows {
            let key: Vec<String> = row.iter().map(|d| d.to_string()).collect();
            prop_assert!(seen.insert(key), "duplicate row under DISTINCT");
        }
    }

    #[test]
    fn null_comparisons_never_match(values in prop::collection::vec(any::<i16>(), 0..40)) {
        let data: Vec<(i64, i64, Option<&str>)> = values
            .iter()
            .enumerate()
            .map(|(i, v)| (*v as i64, i as i64, if i % 3 == 0 { None } else { Some("x") }))
            .collect();
        let rel = table(&data);
        let with_null = execute_sql(&provider(rel.clone()), "SELECT a FROM t WHERE s = 'x'", &[]).unwrap();
        let nulls = execute_sql(&provider(rel), "SELECT a FROM t WHERE s IS NULL", &[]).unwrap();
        let n_null = data.iter().filter(|(_, _, s)| s.is_none()).count();
        prop_assert_eq!(nulls.len(), n_null);
        prop_assert_eq!(with_null.len(), data.len() - n_null);
    }
}

#[test]
fn cmp_datum_is_total_order_on_mixed_types() {
    let values = [
        Datum::Null,
        Datum::Int(-5),
        Datum::Float(2.5),
        Datum::Int(3),
        Datum::Text("a".into()),
        Datum::Text("b".into()),
        Datum::Bool(false),
        Datum::Bool(true),
    ];
    // Transitivity spot-check over all triples.
    for a in &values {
        for b in &values {
            for c in &values {
                use std::cmp::Ordering::*;
                if cmp_datum(a, b) != Greater && cmp_datum(b, c) != Greater {
                    assert_ne!(cmp_datum(a, c), Greater, "{a:?} <= {b:?} <= {c:?}");
                }
            }
        }
    }
}
