//! A from-scratch B+-tree map with unique keys.
//!
//! Used for secondary indexes (e.g. the RCV translator's `(row id, col id)`
//! index and the position-as-is experiments). Duplicate logical keys are
//! handled by compounding the key with the tuple id, the classic unique-key
//! trick. First-key separators: `seps[i]` is the smallest key in
//! `children[i]`'s subtree.

use std::ops::Bound;

/// Maximum entries per leaf / children per internal node.
const MAX: usize = 64;
const MIN: usize = MAX / 2;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Leaf(Vec<(K, V)>),
    Internal {
        seps: Vec<K>,
        children: Vec<Node<K, V>>,
    },
}

impl<K: Ord + Clone, V> Node<K, V> {
    fn min_key(&self) -> &K {
        match self {
            Node::Leaf(items) => &items[0].0,
            Node::Internal { seps, .. } => &seps[0],
        }
    }

    fn len_entries(&self) -> usize {
        match self {
            Node::Leaf(items) => items.len(),
            Node::Internal { children, .. } => children.len(),
        }
    }

    fn is_underfull(&self) -> bool {
        self.len_entries() < MIN
    }

    /// Index of the child responsible for `k`.
    fn child_for(seps: &[K], k: &K) -> usize {
        seps.partition_point(|s| s <= k).saturating_sub(1)
    }

    fn get(&self, k: &K) -> Option<&V> {
        match self {
            Node::Leaf(items) => items
                .binary_search_by(|(key, _)| key.cmp(k))
                .ok()
                .map(|i| &items[i].1),
            Node::Internal { seps, children } => children[Self::child_for(seps, k)].get(k),
        }
    }

    fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        match self {
            Node::Leaf(items) => match items.binary_search_by(|(key, _)| key.cmp(k)) {
                Ok(i) => Some(&mut items[i].1),
                Err(_) => None,
            },
            Node::Internal { seps, children } => {
                let idx = Self::child_for(seps, k);
                children[idx].get_mut(k)
            }
        }
    }

    /// Insert; returns (old value) and an optional split-off right sibling.
    #[allow(clippy::type_complexity)]
    fn insert(&mut self, k: K, v: V) -> (Option<V>, Option<Node<K, V>>) {
        match self {
            Node::Leaf(items) => match items.binary_search_by(|(key, _)| key.cmp(&k)) {
                Ok(i) => (Some(std::mem::replace(&mut items[i].1, v)), None),
                Err(i) => {
                    items.insert(i, (k, v));
                    if items.len() > MAX {
                        let right = items.split_off(items.len() / 2);
                        (None, Some(Node::Leaf(right)))
                    } else {
                        (None, None)
                    }
                }
            },
            Node::Internal { seps, children } => {
                let idx = Self::child_for(seps, &k);
                if k < seps[0] {
                    seps[0] = k.clone();
                }
                let (old, split) = children[idx].insert(k, v);
                if let Some(right) = split {
                    seps.insert(idx + 1, right.min_key().clone());
                    children.insert(idx + 1, right);
                }
                if children.len() > MAX {
                    let at = children.len() / 2;
                    let rchildren = children.split_off(at);
                    let rseps = seps.split_off(at);
                    (
                        old,
                        Some(Node::Internal {
                            seps: rseps,
                            children: rchildren,
                        }),
                    )
                } else {
                    (old, None)
                }
            }
        }
    }

    fn remove(&mut self, k: &K) -> Option<V> {
        match self {
            Node::Leaf(items) => match items.binary_search_by(|(key, _)| key.cmp(k)) {
                Ok(i) => Some(items.remove(i).1),
                Err(_) => None,
            },
            Node::Internal { seps, children } => {
                let idx = Self::child_for(seps, k);
                let removed = children[idx].remove(k)?;
                if children[idx].len_entries() > 0 {
                    seps[idx] = children[idx].min_key().clone();
                }
                if children[idx].is_underfull() {
                    Self::rebalance(seps, children, idx);
                }
                Some(removed)
            }
        }
    }

    fn rebalance(seps: &mut Vec<K>, children: &mut Vec<Node<K, V>>, idx: usize) {
        // Borrow from left.
        if idx > 0 && children[idx - 1].len_entries() > MIN {
            let (l, r) = children.split_at_mut(idx);
            Self::move_last_to_front(&mut l[idx - 1], &mut r[0]);
            seps[idx] = children[idx].min_key().clone();
            return;
        }
        // Borrow from right.
        if idx + 1 < children.len() && children[idx + 1].len_entries() > MIN {
            let (l, r) = children.split_at_mut(idx + 1);
            Self::move_first_to_back(&mut r[0], &mut l[idx]);
            seps[idx + 1] = children[idx + 1].min_key().clone();
            return;
        }
        // Merge with a sibling.
        let left = if idx > 0 { idx - 1 } else { idx };
        let right_node = children.remove(left + 1);
        seps.remove(left + 1);
        Self::merge_into(&mut children[left], right_node);
    }

    fn move_last_to_front(left: &mut Node<K, V>, right: &mut Node<K, V>) {
        match (left, right) {
            (Node::Leaf(l), Node::Leaf(r)) => {
                let item = l.pop().expect("lender non-empty");
                r.insert(0, item);
            }
            (
                Node::Internal {
                    seps: ls,
                    children: lch,
                },
                Node::Internal {
                    seps: rs,
                    children: rch,
                },
            ) => {
                let child = lch.pop().expect("lender non-empty");
                let sep = ls.pop().expect("lender non-empty");
                rch.insert(0, child);
                rs.insert(0, sep);
            }
            _ => unreachable!("siblings share depth"),
        }
    }

    fn move_first_to_back(right: &mut Node<K, V>, left: &mut Node<K, V>) {
        match (right, left) {
            (Node::Leaf(r), Node::Leaf(l)) => {
                l.push(r.remove(0));
            }
            (
                Node::Internal {
                    seps: rs,
                    children: rch,
                },
                Node::Internal {
                    seps: ls,
                    children: lch,
                },
            ) => {
                lch.push(rch.remove(0));
                ls.push(rs.remove(0));
            }
            _ => unreachable!("siblings share depth"),
        }
    }

    fn merge_into(left: &mut Node<K, V>, right: Node<K, V>) {
        match (left, right) {
            (Node::Leaf(l), Node::Leaf(mut r)) => l.append(&mut r),
            (
                Node::Internal {
                    seps: ls,
                    children: lch,
                },
                Node::Internal {
                    seps: mut rs,
                    children: mut rch,
                },
            ) => {
                ls.append(&mut rs);
                lch.append(&mut rch);
            }
            _ => unreachable!("siblings share depth"),
        }
    }

    fn collect_range<'a>(&'a self, lo: Bound<&K>, hi: Bound<&K>, out: &mut Vec<(&'a K, &'a V)>) {
        let above_lo = |k: &K| match lo {
            Bound::Included(b) => k >= b,
            Bound::Excluded(b) => k > b,
            Bound::Unbounded => true,
        };
        let below_hi = |k: &K| match hi {
            Bound::Included(b) => k <= b,
            Bound::Excluded(b) => k < b,
            Bound::Unbounded => true,
        };
        match self {
            Node::Leaf(items) => {
                for (k, v) in items {
                    if above_lo(k) && below_hi(k) {
                        out.push((k, v));
                    }
                }
            }
            Node::Internal { seps, children } => {
                for (i, child) in children.iter().enumerate() {
                    // child i covers [seps[i], seps[i+1]); prune subtrees
                    // entirely outside the bounds.
                    if i + 1 < seps.len() && !above_lo(&seps[i + 1]) {
                        // Entire child below lo only when its *successor*
                        // separator is still below; conservative: skip when
                        // the next child's min also fails above_lo.
                        continue;
                    }
                    if !below_hi(&seps[i]) {
                        break;
                    }
                    child.collect_range(lo, hi, out);
                }
            }
        }
    }
}

/// A unique-key B+-tree map.
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    root: Option<Node<K, V>>,
    len: usize,
}

impl<K: Ord + Clone, V> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V> BPlusTree<K, V> {
    pub fn new() -> Self {
        BPlusTree { root: None, len: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn get(&self, k: &K) -> Option<&V> {
        self.root.as_ref()?.get(k)
    }

    pub fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        self.root.as_mut()?.get_mut(k)
    }

    pub fn contains_key(&self, k: &K) -> bool {
        self.get(k).is_some()
    }

    /// Insert or replace; returns the previous value for `k`.
    pub fn insert(&mut self, k: K, v: V) -> Option<V> {
        let root = match self.root.as_mut() {
            Some(r) => r,
            None => {
                self.root = Some(Node::Leaf(vec![(k, v)]));
                self.len = 1;
                return None;
            }
        };
        let (old, split) = root.insert(k, v);
        if old.is_none() {
            self.len += 1;
        }
        if let Some(right) = split {
            let left = self.root.take().expect("root exists");
            let seps = vec![left.min_key().clone(), right.min_key().clone()];
            self.root = Some(Node::Internal {
                seps,
                children: vec![left, right],
            });
        }
        old
    }

    pub fn remove(&mut self, k: &K) -> Option<V> {
        let root = self.root.as_mut()?;
        let removed = root.remove(k)?;
        self.len -= 1;
        // Collapse trivial roots.
        loop {
            match self.root.take() {
                Some(Node::Leaf(items)) => {
                    if items.is_empty() {
                        self.root = None;
                    } else {
                        self.root = Some(Node::Leaf(items));
                    }
                    break;
                }
                Some(Node::Internal { seps, mut children }) => {
                    if children.len() == 1 {
                        self.root = Some(children.pop().expect("one child"));
                        // Loop again in case of cascading collapse.
                    } else {
                        self.root = Some(Node::Internal { seps, children });
                        break;
                    }
                }
                None => break,
            }
        }
        Some(removed)
    }

    /// All entries with `lo <= key <= hi` bounds, in key order.
    pub fn range(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<(&K, &V)> {
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            root.collect_range(lo, hi, &mut out);
        }
        out
    }

    /// All entries in key order.
    pub fn entries(&self) -> Vec<(&K, &V)> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_replace() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(5, "a"), None);
        assert_eq!(t.insert(5, "b"), Some("a"));
        assert_eq!(t.get(&5), Some(&"b"));
        assert_eq!(t.len(), 1);
        assert!(t.contains_key(&5));
        assert!(!t.contains_key(&6));
    }

    #[test]
    fn thousands_of_keys_sorted_scan() {
        let mut t = BPlusTree::new();
        // Insert in a scrambled order.
        for i in 0..5_000u64 {
            let k = (i * 2_654_435_761) % 5_000;
            t.insert(k, k * 10);
        }
        let entries = t.entries();
        assert_eq!(entries.len(), t.len());
        let keys: Vec<u64> = entries.iter().map(|(k, _)| **k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn range_queries_match_btreemap() {
        use std::collections::BTreeMap;
        let mut t = BPlusTree::new();
        let mut oracle = BTreeMap::new();
        for i in (0..1_000u32).rev() {
            t.insert(i * 3, i);
            oracle.insert(i * 3, i);
        }
        for (lo, hi) in [(0u32, 2_999), (10, 20), (500, 500), (2_999, 3_100), (7, 8)] {
            let got: Vec<(u32, u32)> = t
                .range(Bound::Included(&lo), Bound::Included(&hi))
                .into_iter()
                .map(|(k, v)| (*k, *v))
                .collect();
            let want: Vec<(u32, u32)> = oracle.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
            assert_eq!(got, want, "range {lo}..={hi}");
        }
    }

    #[test]
    fn removal_rebalances_down_to_empty() {
        let mut t = BPlusTree::new();
        for i in 0..3_000i32 {
            t.insert(i, i);
        }
        for i in 0..3_000i32 {
            assert_eq!(t.remove(&i), Some(i), "remove {i}");
        }
        assert!(t.is_empty());
        assert_eq!(t.get(&0), None);
        assert_eq!(t.remove(&0), None);
    }

    #[test]
    fn composite_keys_emulate_duplicates() {
        // The store's non-unique indexes use (key, tuple-id) composites.
        let mut t: BPlusTree<(i64, u64), ()> = BPlusTree::new();
        for tid in 0..10u64 {
            t.insert((42, tid), ());
        }
        t.insert((41, 0), ());
        t.insert((43, 0), ());
        let hits = t.range(
            Bound::Included(&(42, u64::MIN)),
            Bound::Included(&(42, u64::MAX)),
        );
        assert_eq!(hits.len(), 10);
        assert!(t.remove(&(42, 3)).is_some());
        let hits = t.range(
            Bound::Included(&(42, u64::MIN)),
            Bound::Included(&(42, u64::MAX)),
        );
        assert_eq!(hits.len(), 9);
    }
}
