//! Shared length-prefixed little-endian byte codec.
//!
//! Every on-disk format in the workspace — the database snapshot
//! ([`crate::persist`]), tuple encoding ([`crate::datum`]), and the
//! engine's WAL records and checkpoint image (`dataspread-engine`'s
//! `durable` module) — frames its primitives the same way: fixed-width
//! little-endian integers and `u32`-length-prefixed UTF-8 strings. This
//! module is the single implementation of that framing, next to the shared
//! [`crc32`](crate::wal::crc32): `put_*` writers that append to a byte
//! buffer, and a bounds-checked [`Reader`] that refuses to read past the
//! end of its slice (truncated or hostile input surfaces as
//! [`StoreError::Corrupt`], never a panic).

use crate::error::StoreError;

/// Hard cap on a decoded string — a sanity bound against corrupt length
/// fields, deliberately above everything an encoder can legitimately
/// produce (WAL records are capped at [`crate::wal::MAX_RECORD`] = 64 MiB,
/// tuples at the page size), so no committed bytes are ever rejected.
pub const MAX_STR_LEN: usize = 1 << 28;

pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}
/// `u32` length prefix followed by the UTF-8 bytes.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}
/// Raw bytes, no length prefix (fixed-size fields like page images).
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(bytes);
}

/// Shorthand for the corruption error every decoder in the workspace uses.
pub fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

/// Bounds-checked little-endian reader over a byte slice.
///
/// Every accessor returns [`StoreError::Corrupt`] instead of panicking
/// when the slice runs out, so decoders can be driven by untrusted bytes.
pub struct Reader<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Reader<'a> {
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, off: 0 }
    }

    /// Current read offset from the start of the slice.
    pub fn offset(&self) -> usize {
        self.off
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.off
    }

    /// True when every byte has been consumed.
    pub fn done(&self) -> bool {
        self.off == self.bytes.len()
    }

    /// Fail with `ctx` unless the slice was consumed exactly.
    pub fn expect_done(&self, ctx: &str) -> Result<(), StoreError> {
        if self.done() {
            Ok(())
        } else {
            Err(corrupt(format!("trailing bytes after {ctx}")))
        }
    }

    /// Consume the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.off.checked_add(n).filter(|e| *e <= self.bytes.len());
        let Some(end) = end else {
            return Err(corrupt("truncated record"));
        };
        let s = &self.bytes[self.off..end];
        self.off = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }
    pub fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// A string written by [`put_str`].
    pub fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        if len > MAX_STR_LEN {
            return Err(corrupt(format!("string of {len} bytes exceeds bound")));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid utf-8 string"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 1234);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -2.5);
        put_str(&mut buf, "héllo");
        put_bytes(&mut buf, &[1, 2, 3]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 1234);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), -2.5);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.take(3).unwrap(), &[1, 2, 3]);
        assert!(r.done());
        r.expect_done("test").unwrap();
    }

    #[test]
    fn bounds_checked_reads_fail_cleanly() {
        let mut r = Reader::new(&[1, 2]);
        assert!(r.u32().is_err());
        assert_eq!(r.offset(), 0, "failed read consumes nothing");
        assert_eq!(r.u16().unwrap(), 0x0201);
        assert!(r.u8().is_err());
        // A string length pointing past the end is corruption, not a panic.
        let mut buf = Vec::new();
        put_u32(&mut buf, 100);
        buf.extend_from_slice(b"abc");
        assert!(Reader::new(&buf).str().is_err());
        // An implausible length is rejected before allocation.
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        assert!(Reader::new(&buf).str().is_err());
    }

    #[test]
    fn expect_done_flags_trailing_bytes() {
        let mut r = Reader::new(&[0, 1]);
        r.u8().unwrap();
        assert!(r.expect_done("thing").is_err());
        assert_eq!(r.remaining(), 1);
    }
}
