//! Typed values and their on-page encoding.
//!
//! The byte layout is built on the shared [`crate::codec`] primitives, so
//! tuple bytes, snapshot files, and the engine's WAL records all use the
//! same bounds-checked framing.

use std::fmt;

use crate::codec::{self, Reader};
use crate::error::StoreError;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Int,
    Float,
    Text,
    Bool,
    /// Accepts any datum — used by the storage engine's spreadsheet-cell
    /// columns, which hold whatever the user typed (like SQLite's type
    /// affinity rather than rigid typing).
    Any,
}

/// A single typed value inside a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    Null,
    Int(i64),
    Float(f64),
    Text(String),
    Bool(bool),
}

impl Datum {
    /// Whether this datum can be stored in a column of type `ty`.
    /// `Null` fits everywhere; `Int` widens into `Float` columns.
    pub fn fits(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (_, DataType::Any)
                | (Datum::Null, _)
                | (Datum::Int(_), DataType::Int)
                | (Datum::Int(_), DataType::Float)
                | (Datum::Float(_), DataType::Float)
                | (Datum::Text(_), DataType::Text)
                | (Datum::Bool(_), DataType::Bool)
        )
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Datum::Int(i) => Some(*i),
            Datum::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::Int(i) => Some(*i as f64),
            Datum::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Text(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Encoded size in bytes (tag + payload), excluding tuple headers.
    pub fn encoded_len(&self) -> usize {
        1 + match self {
            Datum::Null => 0,
            Datum::Int(_) => 8,
            Datum::Float(_) => 8,
            Datum::Text(s) => 4 + s.len(),
            Datum::Bool(_) => 1,
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Datum::Null => codec::put_u8(out, 0),
            Datum::Int(i) => {
                codec::put_u8(out, 1);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Datum::Float(f) => {
                codec::put_u8(out, 2);
                codec::put_f64(out, *f);
            }
            Datum::Text(s) => {
                codec::put_u8(out, 3);
                codec::put_str(out, s);
            }
            Datum::Bool(b) => {
                codec::put_u8(out, 4);
                codec::put_u8(out, *b as u8);
            }
        }
    }

    fn decode_from(cur: &mut Reader<'_>) -> Result<Datum, StoreError> {
        match cur.u8()? {
            0 => Ok(Datum::Null),
            1 => {
                let b: [u8; 8] = cur.take(8)?.try_into().expect("8 bytes");
                Ok(Datum::Int(i64::from_le_bytes(b)))
            }
            2 => Ok(Datum::Float(cur.f64()?)),
            3 => Ok(Datum::Text(cur.str()?)),
            4 => Ok(Datum::Bool(cur.u8()? != 0)),
            t => Err(codec::corrupt(format!("unknown datum tag {t}"))),
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Int(i) => write!(f, "{i}"),
            Datum::Float(x) => write!(f, "{x}"),
            Datum::Text(s) => write!(f, "{s}"),
            Datum::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int(v)
    }
}
impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Float(v)
    }
}
impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::Text(v.to_string())
    }
}
impl From<String> for Datum {
    fn from(v: String) -> Self {
        Datum::Text(v)
    }
}
impl From<bool> for Datum {
    fn from(v: bool) -> Self {
        Datum::Bool(v)
    }
}

/// Encode a row of datums: `u16` arity followed by each datum.
pub fn encode_row(row: &[Datum]) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + row.iter().map(Datum::encoded_len).sum::<usize>());
    codec::put_u16(&mut out, row.len() as u16);
    for d in row {
        d.encode_into(&mut out);
    }
    out
}

/// Skip one encoded datum without allocating its value.
fn skip_datum(cur: &mut Reader<'_>) -> Result<(), StoreError> {
    let payload = match cur.u8()? {
        0 => 0,
        1 | 2 => 8,
        3 => cur.u32()? as usize,
        4 => 1,
        t => return Err(codec::corrupt(format!("unknown datum tag {t}"))),
    };
    cur.take(payload)?;
    Ok(())
}

/// Decode only the datums at the given (sorted, deduplicated) indices,
/// skipping everything else without allocation. Indices beyond the row's
/// arity yield `Null` (short rows are NULL-padded by convention). Returns
/// one datum per requested index, in order.
pub fn decode_row_project(buf: &[u8], wanted: &[usize]) -> Result<Vec<Datum>, StoreError> {
    let mut cur = Reader::new(buf);
    let n = cur
        .u16()
        .map_err(|_| codec::corrupt("row shorter than arity header"))? as usize;
    let mut out = Vec::with_capacity(wanted.len());
    let mut next = 0usize; // index into `wanted`
    for i in 0..n {
        if next >= wanted.len() {
            break;
        }
        if wanted[next] == i {
            out.push(Datum::decode_from(&mut cur)?);
            next += 1;
        } else {
            skip_datum(&mut cur)?;
        }
    }
    // NULL-pad requests beyond the stored arity.
    out.resize(wanted.len(), Datum::Null);
    Ok(out)
}

/// Decode a row previously produced by [`encode_row`].
pub fn decode_row(buf: &[u8]) -> Result<Vec<Datum>, StoreError> {
    let mut cur = Reader::new(buf);
    let n = cur
        .u16()
        .map_err(|_| codec::corrupt("row shorter than arity header"))? as usize;
    let mut row = Vec::with_capacity(n);
    for _ in 0..n {
        row.push(Datum::decode_from(&mut cur)?);
    }
    cur.expect_done("row")?;
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let row = vec![
            Datum::Null,
            Datum::Int(-42),
            Datum::Float(3.5),
            Datum::Text("héllo".into()),
            Datum::Bool(true),
        ];
        let bytes = encode_row(&row);
        assert_eq!(decode_row(&bytes).unwrap(), row);
    }

    #[test]
    fn encoded_len_matches_actual() {
        for d in [
            Datum::Null,
            Datum::Int(7),
            Datum::Float(1.25),
            Datum::Text("abc".into()),
            Datum::Bool(false),
        ] {
            let mut buf = Vec::new();
            d.encode_into(&mut buf);
            assert_eq!(buf.len(), d.encoded_len(), "{d:?}");
        }
    }

    #[test]
    fn projected_decode_matches_full_decode() {
        let row = vec![
            Datum::Int(1),
            Datum::Text("abc".into()),
            Datum::Null,
            Datum::Float(2.5),
            Datum::Bool(true),
        ];
        let bytes = encode_row(&row);
        assert_eq!(
            decode_row_project(&bytes, &[1, 3]).unwrap(),
            vec![Datum::Text("abc".into()), Datum::Float(2.5)]
        );
        assert_eq!(
            decode_row_project(&bytes, &[0]).unwrap(),
            vec![Datum::Int(1)]
        );
        // Beyond arity pads with NULL.
        assert_eq!(
            decode_row_project(&bytes, &[4, 9]).unwrap(),
            vec![Datum::Bool(true), Datum::Null]
        );
        assert_eq!(
            decode_row_project(&bytes, &[]).unwrap(),
            Vec::<Datum>::new()
        );
    }

    #[test]
    fn decode_rejects_corruption() {
        let row = vec![Datum::Text("hello".into())];
        let mut bytes = encode_row(&row);
        bytes.truncate(bytes.len() - 1);
        assert!(decode_row(&bytes).is_err());
        assert!(decode_row(&[9, 9, 9]).is_err());
        assert!(decode_row(&[]).is_err());
    }

    #[test]
    fn fits_rules() {
        assert!(Datum::Null.fits(DataType::Int));
        assert!(Datum::Int(1).fits(DataType::Float));
        assert!(!Datum::Float(1.0).fits(DataType::Int));
        assert!(!Datum::Text("x".into()).fits(DataType::Bool));
    }

    #[test]
    fn accessors() {
        assert_eq!(Datum::Int(5).as_f64(), Some(5.0));
        assert_eq!(Datum::Float(5.0).as_i64(), Some(5));
        assert_eq!(Datum::Float(5.5).as_i64(), None);
        assert_eq!(Datum::Text("x".into()).as_str(), Some("x"));
        assert_eq!(Datum::Bool(true).as_bool(), Some(true));
        assert!(Datum::Null.is_null());
    }
}
