//! The database: a catalog of named tables.

use std::collections::BTreeMap;

use crate::error::StoreError;
use crate::schema::Schema;
use crate::table::Table;

/// Store-wide configuration knobs.
#[derive(Debug, Clone)]
pub struct StorageConfig {
    /// Maximum columns per relation (paper Appendix A-C4; PostgreSQL's
    /// limit is 1600).
    pub max_columns: usize,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig { max_columns: 1600 }
    }
}

/// A catalog of tables. The storage engine's ROM/COM/RCV/TOM translators
/// each own one or more tables created here.
#[derive(Debug, Default, Clone)]
pub struct Database {
    config: StorageConfig,
    tables: BTreeMap<String, Table>,
    /// Bumped on every operation that can change catalog or table contents
    /// (including handing out `&mut Table`, which is conservatively counted
    /// as a change). Lets observers — e.g. linked-table (TOM) regions at
    /// checkpoint time — cheaply detect "nothing changed since stamp X"
    /// without diffing table bytes.
    ///
    /// The counter doubles as the tick source for *per-table* change
    /// stamps: every mutable hand-out stamps the affected table with the
    /// fresh tick ([`Table::last_change`]), so observers of one table are
    /// not dirtied by mutations to the others —
    /// see [`Database::change_stamp_for`].
    change_count: u64,
}

impl Database {
    pub fn new() -> Self {
        Self::with_config(StorageConfig::default())
    }

    pub fn with_config(config: StorageConfig) -> Self {
        Database {
            config,
            tables: BTreeMap::new(),
            change_count: 0,
        }
    }

    pub fn config(&self) -> &StorageConfig {
        &self.config
    }

    /// Monotonic change counter: unchanged value between two reads means no
    /// mutable access happened in between (the converse may not hold — a
    /// `table_mut` that writes nothing still bumps it).
    pub fn change_count(&self) -> u64 {
        self.change_count
    }

    /// The change stamp an observer of table `name` should remember: the
    /// table's own [`Table::last_change`] tick, or the database-wide
    /// counter when the table does not exist (any catalog motion may
    /// (re)create it). An unchanged stamp between two reads proves the
    /// observed table saw no mutable access in between, regardless of what
    /// happened to other tables.
    pub fn change_stamp_for(&self, name: &str) -> u64 {
        self.tables
            .get(name)
            .map(Table::last_change)
            .unwrap_or(self.change_count)
    }

    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<&mut Table, StoreError> {
        self.change_count += 1;
        if schema.len() > self.config.max_columns {
            return Err(StoreError::LimitExceeded(format!(
                "{} columns exceeds limit {}",
                schema.len(),
                self.config.max_columns
            )));
        }
        if self.tables.contains_key(name) {
            return Err(StoreError::TableExists(name.to_string()));
        }
        let mut table = Table::new(name, schema).with_max_columns(self.config.max_columns);
        table.note_change(self.change_count);
        self.tables.insert(name.to_string(), table);
        Ok(self.tables.get_mut(name).expect("just inserted"))
    }

    /// Register a fully-built table (snapshot restore path).
    pub fn insert_table(&mut self, mut table: Table) -> Result<(), StoreError> {
        if self.tables.contains_key(table.name()) {
            return Err(StoreError::TableExists(table.name().to_string()));
        }
        self.change_count += 1;
        table.note_change(self.change_count);
        self.tables.insert(table.name().to_string(), table);
        Ok(())
    }

    pub fn drop_table(&mut self, name: &str) -> Result<Table, StoreError> {
        let t = self
            .tables
            .remove(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))?;
        self.change_count += 1;
        Ok(t)
    }

    pub fn rename_table(&mut self, from: &str, to: &str) -> Result<(), StoreError> {
        if self.tables.contains_key(to) {
            return Err(StoreError::TableExists(to.to_string()));
        }
        let mut t = self
            .tables
            .remove(from)
            .ok_or_else(|| StoreError::NoSuchTable(from.to_string()))?;
        self.change_count += 1;
        t.set_name(to);
        t.note_change(self.change_count);
        self.tables.insert(to.to_string(), t);
        Ok(())
    }

    pub fn table(&self, name: &str) -> Result<&Table, StoreError> {
        self.tables
            .get(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StoreError> {
        if !self.tables.contains_key(name) {
            return Err(StoreError::NoSuchTable(name.to_string()));
        }
        self.change_count += 1;
        let tick = self.change_count;
        let t = self.tables.get_mut(name).expect("checked above");
        t.note_change(tick);
        Ok(t)
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Physical bytes across all tables.
    pub fn physical_bytes(&self) -> u64 {
        self.tables.values().map(Table::physical_bytes).sum()
    }

    /// Accounted bytes across all tables (paper cost structure).
    pub fn accounted_bytes(&self) -> u64 {
        self.tables.values().map(Table::accounted_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::{DataType, Datum};
    use crate::schema::ColumnDef;

    fn schema() -> Schema {
        Schema::new(vec![ColumnDef::new("x", DataType::Int)])
    }

    #[test]
    fn create_get_drop() {
        let mut db = Database::new();
        db.create_table("t1", schema()).unwrap();
        assert!(db.contains("t1"));
        assert!(matches!(
            db.create_table("t1", schema()),
            Err(StoreError::TableExists(_))
        ));
        db.table_mut("t1")
            .unwrap()
            .insert(&[Datum::Int(1)])
            .unwrap();
        assert_eq!(db.table("t1").unwrap().row_count(), 1);
        db.drop_table("t1").unwrap();
        assert!(matches!(db.table("t1"), Err(StoreError::NoSuchTable(_))));
    }

    #[test]
    fn rename_preserves_rows() {
        let mut db = Database::new();
        db.create_table("a", schema()).unwrap();
        db.table_mut("a").unwrap().insert(&[Datum::Int(7)]).unwrap();
        db.rename_table("a", "b").unwrap();
        assert!(!db.contains("a"));
        assert_eq!(db.table("b").unwrap().row_count(), 1);
        assert_eq!(db.table("b").unwrap().name(), "b");
        db.create_table("a", schema()).unwrap();
        assert!(db.rename_table("b", "a").is_err());
    }

    #[test]
    fn column_limit_enforced_at_creation() {
        let mut db = Database::with_config(StorageConfig { max_columns: 2 });
        let wide = Schema::new(vec![
            ColumnDef::new("a", DataType::Int),
            ColumnDef::new("b", DataType::Int),
            ColumnDef::new("c", DataType::Int),
        ]);
        assert!(matches!(
            db.create_table("w", wide),
            Err(StoreError::LimitExceeded(_))
        ));
    }

    #[test]
    fn change_count_tracks_mutable_access() {
        let mut db = Database::new();
        let c0 = db.change_count();
        db.create_table("t", schema()).unwrap();
        let c1 = db.change_count();
        assert!(c1 > c0, "create_table must bump");
        // Read-only access never bumps.
        db.table("t").unwrap();
        assert!(db.contains("t"));
        let _ = db.physical_bytes();
        assert_eq!(db.change_count(), c1);
        db.table_mut("t").unwrap().insert(&[Datum::Int(1)]).unwrap();
        let c2 = db.change_count();
        assert!(c2 > c1, "table_mut must bump");
        db.rename_table("t", "u").unwrap();
        let c3 = db.change_count();
        assert!(c3 > c2);
        db.drop_table("u").unwrap();
        assert!(db.change_count() > c3);
        // Failed mutations leave the counter untouched.
        let cf = db.change_count();
        assert!(db.drop_table("nope").is_err());
        assert!(db.table_mut("nope").is_err());
        assert_eq!(db.change_count(), cf);
    }

    #[test]
    fn per_table_stamps_isolate_unrelated_mutations() {
        let mut db = Database::new();
        db.create_table("a", schema()).unwrap();
        db.create_table("b", schema()).unwrap();
        let a0 = db.change_stamp_for("a");
        let b0 = db.change_stamp_for("b");
        assert_ne!(a0, b0, "ticks are globally unique");
        // Mutating `b` must not move `a`'s stamp (the whole point: a TOM
        // region linked to `a` stays clean while `b` churns).
        db.table_mut("b").unwrap().insert(&[Datum::Int(1)]).unwrap();
        assert_eq!(db.change_stamp_for("a"), a0);
        assert!(db.change_stamp_for("b") > b0);
        // Mutating `a` moves only `a`.
        let b1 = db.change_stamp_for("b");
        db.table_mut("a").unwrap().insert(&[Datum::Int(2)]).unwrap();
        assert!(db.change_stamp_for("a") > a0);
        assert_eq!(db.change_stamp_for("b"), b1);
        // Catalog ops move the affected table's stamp; a missing table
        // reports the (moving) global counter, so dangling observers stay
        // conservative.
        db.rename_table("a", "c").unwrap();
        let missing = db.change_stamp_for("a");
        assert_eq!(missing, db.change_count());
        assert!(db.change_stamp_for("c") > a0);
        db.drop_table("b").unwrap();
        assert!(db.change_stamp_for("b") > b1, "drop moves the global tick");
    }

    #[test]
    fn storage_totals_sum_tables() {
        let mut db = Database::new();
        db.create_table("a", schema()).unwrap();
        db.create_table("b", schema()).unwrap();
        assert_eq!(
            db.physical_bytes(),
            db.table("a").unwrap().physical_bytes() + db.table("b").unwrap().physical_bytes()
        );
        assert!(db.accounted_bytes() > 0);
    }
}
