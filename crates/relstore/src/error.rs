//! Store-level error type.

use std::fmt;

/// Errors raised by the row store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A table name was not found in the catalog.
    NoSuchTable(String),
    /// A table with the name already exists.
    TableExists(String),
    /// A row did not match the table schema.
    SchemaMismatch(String),
    /// A tuple id did not resolve to a live tuple.
    BadTupleId,
    /// A tuple was too large to fit in a page.
    TupleTooLarge(usize),
    /// Tuple bytes failed to decode.
    Corrupt(String),
    /// A column name was not found in a schema.
    NoSuchColumn(String),
    /// The operation would exceed a configured limit (e.g. max columns,
    /// paper Appendix A-C4).
    LimitExceeded(String),
    /// An operating-system I/O failure (persistence paths: pager, WAL,
    /// snapshots). Stored as its display string so the error stays `Clone`
    /// + `PartialEq` like the rest of the enum.
    Io(String),
    /// A *permanent* storage failure: an fsync (or the truncate that
    /// follows a checkpoint) failed, so the affected log/store can no
    /// longer prove anything durable and refuses every later commit.
    /// Unlike [`StoreError::Io`] this is sticky — the only recovery is
    /// reopening the store and replaying what actually reached the disk.
    StorageFailed(String),
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchTable(n) => write!(f, "no such table: {n}"),
            StoreError::TableExists(n) => write!(f, "table already exists: {n}"),
            StoreError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            StoreError::BadTupleId => write!(f, "invalid tuple id"),
            StoreError::TupleTooLarge(n) => write!(f, "tuple of {n} bytes exceeds page capacity"),
            StoreError::Corrupt(m) => write!(f, "corrupt tuple: {m}"),
            StoreError::NoSuchColumn(n) => write!(f, "no such column: {n}"),
            StoreError::LimitExceeded(m) => write!(f, "limit exceeded: {m}"),
            StoreError::Io(m) => write!(f, "io error: {m}"),
            StoreError::StorageFailed(m) => write!(f, "storage failed (permanent): {m}"),
        }
    }
}

impl std::error::Error for StoreError {}
