//! Heap files: an append-oriented collection of slotted pages.

use crate::error::StoreError;
use crate::page::{Page, PAGE_SIZE};

/// A stable tuple pointer: page number and slot within the page.
///
/// This is what the positional-mapping structures of the engine crate store
/// in their leaves (paper Figure 11: "leaf nodes store tuple pointers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    pub page: u32,
    pub slot: u16,
}

/// A heap file of slotted pages.
#[derive(Debug, Default, Clone)]
pub struct HeapFile {
    pages: Vec<Page>,
    /// Page that most recently accepted an insert — first candidate for the
    /// next one (cheap, good locality for bulk loads).
    insert_hint: usize,
    live: u64,
}

impl HeapFile {
    pub fn new() -> Self {
        HeapFile {
            pages: Vec::new(),
            insert_hint: 0,
            live: 0,
        }
    }

    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    pub fn live_count(&self) -> u64 {
        self.live
    }

    /// Physical bytes occupied (whole pages, like a real store).
    pub fn physical_bytes(&self) -> u64 {
        (self.pages.len() * PAGE_SIZE) as u64
    }

    /// Insert tuple bytes, returning a stable [`TupleId`].
    pub fn insert(&mut self, bytes: &[u8]) -> Result<TupleId, StoreError> {
        if bytes.len() + 8 >= PAGE_SIZE {
            return Err(StoreError::TupleTooLarge(bytes.len()));
        }
        if !self.pages.is_empty() {
            let hint = self.insert_hint.min(self.pages.len() - 1);
            if let Some(slot) = self.pages[hint].insert(bytes) {
                self.live += 1;
                return Ok(TupleId {
                    page: hint as u32,
                    slot,
                });
            }
            // Fall back to the last page if the hint differs.
            let last = self.pages.len() - 1;
            if last != hint {
                if let Some(slot) = self.pages[last].insert(bytes) {
                    self.insert_hint = last;
                    self.live += 1;
                    return Ok(TupleId {
                        page: last as u32,
                        slot,
                    });
                }
            }
        }
        let mut page = Page::new();
        let slot = page.insert(bytes).expect("fresh page fits bounded tuple");
        self.pages.push(page);
        self.insert_hint = self.pages.len() - 1;
        self.live += 1;
        Ok(TupleId {
            page: (self.pages.len() - 1) as u32,
            slot,
        })
    }

    pub fn get(&self, tid: TupleId) -> Option<&[u8]> {
        self.pages.get(tid.page as usize)?.get(tid.slot)
    }

    /// Delete a tuple; returns true when it was live.
    pub fn delete(&mut self, tid: TupleId) -> bool {
        match self.pages.get_mut(tid.page as usize) {
            Some(p) => {
                let was = p.delete(tid.slot);
                if was {
                    self.live -= 1;
                }
                was
            }
            None => false,
        }
    }

    /// Update a tuple. When it no longer fits in its page the tuple moves
    /// and the *new* TupleId is returned (callers owning indexes must
    /// re-point them, exactly the bookkeeping real stores do).
    pub fn update(&mut self, tid: TupleId, bytes: &[u8]) -> Result<TupleId, StoreError> {
        if bytes.len() + 8 >= PAGE_SIZE {
            return Err(StoreError::TupleTooLarge(bytes.len()));
        }
        let page = self
            .pages
            .get_mut(tid.page as usize)
            .ok_or(StoreError::BadTupleId)?;
        if page.get(tid.slot).is_none() {
            return Err(StoreError::BadTupleId);
        }
        if page.update(tid.slot, bytes) {
            return Ok(tid);
        }
        // Relocate.
        page.delete(tid.slot);
        self.live -= 1;
        self.insert(bytes)
    }

    /// Persistence view of the pages, in page-number order.
    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// Append a page restored from a snapshot (persistence only — page
    /// numbers are their vector positions, so pages must arrive in order).
    pub fn push_raw_page(&mut self, page: Page) {
        self.pages.push(page);
    }

    /// Restore the live-tuple counter after loading raw pages.
    pub fn set_live_count(&mut self, live: u64) {
        self.live = live;
    }

    /// Iterate all live tuples as `(TupleId, bytes)`.
    pub fn scan(&self) -> impl Iterator<Item = (TupleId, &[u8])> {
        self.pages.iter().enumerate().flat_map(|(pno, page)| {
            page.iter().map(move |(slot, bytes)| {
                (
                    TupleId {
                        page: pno as u32,
                        slot,
                    },
                    bytes,
                )
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_spills_to_new_pages() {
        let mut h = HeapFile::new();
        let tuple = [1u8; 1000];
        for _ in 0..30 {
            h.insert(&tuple).unwrap();
        }
        assert!(h.page_count() >= 4, "1000B tuples: ~8 per page");
        assert_eq!(h.live_count(), 30);
        assert_eq!(h.physical_bytes(), (h.page_count() * PAGE_SIZE) as u64);
    }

    #[test]
    fn get_delete_update() {
        let mut h = HeapFile::new();
        let t = h.insert(b"abc").unwrap();
        assert_eq!(h.get(t), Some(&b"abc"[..]));
        let t2 = h.update(t, b"xy").unwrap();
        assert_eq!(t2, t, "shrinking update stays in place");
        assert_eq!(h.get(t), Some(&b"xy"[..]));
        assert!(h.delete(t));
        assert!(!h.delete(t));
        assert_eq!(h.get(t), None);
        assert!(h.update(t, b"zz").is_err(), "update of dead tuple fails");
    }

    #[test]
    fn relocating_update_returns_new_tid() {
        let mut h = HeapFile::new();
        let first = h.insert(&[0u8; 16]).unwrap();
        // Fill the first page so growth must relocate.
        while h.page_count() == 1 {
            h.insert(&[2u8; 500]).unwrap();
        }
        let live_before = h.live_count();
        let moved = h.update(first, &vec![9u8; 6000]).unwrap();
        assert_ne!(moved, first);
        assert_eq!(h.get(moved).unwrap().len(), 6000);
        assert_eq!(h.get(first), None);
        assert_eq!(h.live_count(), live_before);
    }

    #[test]
    fn rejects_oversized_tuples() {
        let mut h = HeapFile::new();
        assert!(matches!(
            h.insert(&vec![0u8; PAGE_SIZE]),
            Err(StoreError::TupleTooLarge(_))
        ));
    }

    #[test]
    fn scan_visits_all_live() {
        let mut h = HeapFile::new();
        let ids: Vec<_> = (0..100u8).map(|i| h.insert(&[i]).unwrap()).collect();
        h.delete(ids[50]);
        let seen: Vec<u8> = h.scan().map(|(_, b)| b[0]).collect();
        assert_eq!(seen.len(), 99);
        assert!(!seen.contains(&50));
    }
}
