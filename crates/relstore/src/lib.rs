//! An embedded relational row store.
//!
//! DataSpread's storage engine persists spreadsheet data as relational
//! tables inside PostgreSQL. This crate is the workspace's PostgreSQL
//! stand-in: a from-scratch single-process row store with
//!
//! * 8 KB slotted [`page::Page`]s,
//! * [`heap::HeapFile`]s addressed by [`TupleId`] (page, slot),
//! * typed tuples ([`datum::Datum`]) with per-tuple header overhead
//!   mirroring the paper's measured PostgreSQL constants,
//! * a from-scratch [`btree::BPlusTree`] for secondary indexes,
//! * a [`db::Database`] catalog.
//!
//! It intentionally models the *cost structure* the paper measures —
//! per-table, per-row, per-column, and per-cell overheads — so that storage
//! comparisons between data models (ROM / COM / RCV / hybrids) transfer.
//!
//! Durability comes in two tiers:
//!
//! * [`persist`] — whole-database snapshots (atomic temp-file + rename),
//!   the import/export path;
//! * [`pager`] + [`wal`] — page-granular persistence: fixed-size page I/O
//!   through an LRU cache with dirty tracking, and a CRC-framed write-ahead
//!   log whose fsync-point is the commit point. The engine crate composes
//!   the two into crash-recoverable sheet storage.

pub mod btree;
pub mod codec;
pub mod datum;
pub mod db;
pub mod error;
pub mod heap;
pub mod page;
pub mod pager;
pub mod persist;
pub mod schema;
pub mod table;
pub mod vfs;
pub mod wal;

pub use btree::BPlusTree;
pub use codec::Reader;
pub use datum::{DataType, Datum};
pub use db::{Database, StorageConfig};
pub use error::StoreError;
pub use heap::{HeapFile, TupleId};
pub use page::{Page, PAGE_SIZE};
pub use pager::{Pager, PagerStats};
pub use schema::{ColumnDef, Schema};
pub use table::Table;
pub use vfs::{
    real_fs, FaultFs, FaultKind, FaultOp, FaultPlan, FaultRule, OpenMode, RealFs, StorageFs,
    VfsFile,
};
pub use wal::{crc32, SharedWal, Wal, WalObs};
