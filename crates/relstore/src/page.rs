//! Slotted pages.
//!
//! Classic slotted-page layout inside an 8 KB buffer: a header and a slot
//! directory grow from the front; tuple bytes grow from the back. Deleting
//! a tuple tombstones its slot (like PostgreSQL before VACUUM); updates are
//! done in place when the new tuple fits, otherwise the caller relocates.

/// Page size in bytes. Matches the paper's measured PostgreSQL constant
/// `s1` = 8 KB (the cost of initializing a new table = its first page).
pub const PAGE_SIZE: usize = 8192;

const HEADER: usize = 4; // n_slots: u16, free_end: u16
const SLOT: usize = 4; // offset: u16, len: u16 (offset 0 = dead)

/// An 8 KB slotted page.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
    n_slots: u16,
    free_end: u16,
    live: u16,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("n_slots", &self.n_slots)
            .field("live", &self.live)
            .field("free", &self.free_space())
            .finish()
    }
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    pub fn new() -> Self {
        Page {
            data: vec![0u8; PAGE_SIZE]
                .into_boxed_slice()
                .try_into()
                .expect("PAGE_SIZE"),
            n_slots: 0,
            free_end: PAGE_SIZE as u16,
            live: 0,
        }
    }

    fn slot(&self, i: u16) -> (u16, u16) {
        let base = HEADER + i as usize * SLOT;
        let off = u16::from_le_bytes([self.data[base], self.data[base + 1]]);
        let len = u16::from_le_bytes([self.data[base + 2], self.data[base + 3]]);
        (off, len)
    }

    fn set_slot(&mut self, i: u16, off: u16, len: u16) {
        let base = HEADER + i as usize * SLOT;
        self.data[base..base + 2].copy_from_slice(&off.to_le_bytes());
        self.data[base + 2..base + 4].copy_from_slice(&len.to_le_bytes());
    }

    fn slots_end(&self) -> usize {
        HEADER + self.n_slots as usize * SLOT
    }

    /// Contiguous free bytes between the slot directory and the tuple heap.
    pub fn free_space(&self) -> usize {
        self.free_end as usize - self.slots_end()
    }

    /// Number of live tuples.
    pub fn live_count(&self) -> u16 {
        self.live
    }

    /// Number of slots (live + dead).
    pub fn slot_count(&self) -> u16 {
        self.n_slots
    }

    /// Whether `bytes` would fit as a fresh insert.
    pub fn fits(&self, len: usize) -> bool {
        // A dead slot can be reused (no directory growth); otherwise we need
        // a new directory entry too.
        let needs_dir = if self.has_dead_slot() { 0 } else { SLOT };
        len + needs_dir <= self.free_space()
    }

    fn has_dead_slot(&self) -> bool {
        (0..self.n_slots).any(|i| self.slot(i).0 == 0)
    }

    /// Insert tuple bytes; returns the slot number, or `None` when full.
    pub fn insert(&mut self, bytes: &[u8]) -> Option<u16> {
        assert!(!bytes.is_empty() && bytes.len() < PAGE_SIZE, "tuple size");
        let dead = (0..self.n_slots).find(|&i| self.slot(i).0 == 0);
        let needs_dir = if dead.is_some() { 0 } else { SLOT };
        if bytes.len() + needs_dir > self.free_space() {
            return None;
        }
        let off = self.free_end as usize - bytes.len();
        self.data[off..self.free_end as usize].copy_from_slice(bytes);
        self.free_end = off as u16;
        let slot_no = match dead {
            Some(i) => i,
            None => {
                self.n_slots += 1;
                self.n_slots - 1
            }
        };
        self.set_slot(slot_no, off as u16, bytes.len() as u16);
        self.live += 1;
        Some(slot_no)
    }

    /// Read the tuple bytes in `slot`; `None` for dead or unknown slots.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.n_slots {
            return None;
        }
        let (off, len) = self.slot(slot);
        if off == 0 {
            return None;
        }
        Some(&self.data[off as usize..(off + len) as usize])
    }

    /// Tombstone a slot; returns true if it was live.
    pub fn delete(&mut self, slot: u16) -> bool {
        if slot >= self.n_slots || self.slot(slot).0 == 0 {
            return false;
        }
        self.set_slot(slot, 0, 0);
        self.live -= 1;
        true
    }

    /// Update in place when possible: shrinking reuses the old bytes,
    /// growing allocates from this page's free space. Returns false when
    /// the caller must relocate the tuple to another page.
    pub fn update(&mut self, slot: u16, bytes: &[u8]) -> bool {
        if slot >= self.n_slots {
            return false;
        }
        let (off, len) = self.slot(slot);
        if off == 0 {
            return false;
        }
        if bytes.len() <= len as usize {
            let off = off as usize;
            self.data[off..off + bytes.len()].copy_from_slice(bytes);
            self.set_slot(slot, off as u16, bytes.len() as u16);
            return true;
        }
        if bytes.len() <= self.free_space() {
            let new_off = self.free_end as usize - bytes.len();
            self.data[new_off..self.free_end as usize].copy_from_slice(bytes);
            self.free_end = new_off as u16;
            self.set_slot(slot, new_off as u16, bytes.len() as u16);
            return true;
        }
        false
    }

    /// Iterate live slots as (slot, bytes).
    pub fn iter(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.n_slots).filter_map(move |i| self.get(i).map(|b| (i, b)))
    }

    /// Raw persistence view: (page bytes, n_slots, free_end, live).
    pub fn raw_parts(&self) -> (&[u8], u16, u16, u16) {
        (&self.data[..], self.n_slots, self.free_end, self.live)
    }

    /// Rebuild a page from persisted parts (validates basic bounds).
    pub fn from_raw_parts(
        bytes: Vec<u8>,
        n_slots: u16,
        free_end: u16,
        live: u16,
    ) -> Result<Self, crate::error::StoreError> {
        if bytes.len() != PAGE_SIZE {
            return Err(crate::error::StoreError::Corrupt(format!(
                "page of {} bytes",
                bytes.len()
            )));
        }
        if live > n_slots || HEADER + n_slots as usize * SLOT > free_end as usize {
            return Err(crate::error::StoreError::Corrupt(
                "inconsistent page header".into(),
            ));
        }
        Ok(Page {
            data: bytes.into_boxed_slice().try_into().expect("checked size"),
            n_slots,
            free_end,
            live,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut p = Page::new();
        let s1 = p.insert(b"hello").unwrap();
        let s2 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s1), Some(&b"hello"[..]));
        assert_eq!(p.get(s2), Some(&b"world!"[..]));
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = Page::new();
        let tuple = [7u8; 100];
        let mut n = 0;
        while p.insert(&tuple).is_some() {
            n += 1;
        }
        // 8192 - 4 header over (100 + 4/slot) ≈ 78 tuples.
        assert!((70..=82).contains(&n), "unexpected capacity {n}");
        assert!(!p.fits(100));
        assert!(p.fits(1) || p.free_space() < 5);
    }

    #[test]
    fn delete_reuses_slot() {
        let mut p = Page::new();
        let s0 = p.insert(b"aaaa").unwrap();
        let _s1 = p.insert(b"bbbb").unwrap();
        assert!(p.delete(s0));
        assert!(!p.delete(s0), "double delete is a no-op");
        assert_eq!(p.get(s0), None);
        let s2 = p.insert(b"cccc").unwrap();
        assert_eq!(s2, s0, "dead slot should be reused");
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = Page::new();
        let s = p.insert(b"0123456789").unwrap();
        assert!(p.update(s, b"abc"));
        assert_eq!(p.get(s), Some(&b"abc"[..]));
        assert!(p.update(s, b"a-longer-replacement"));
        assert_eq!(p.get(s), Some(&b"a-longer-replacement"[..]));
    }

    #[test]
    fn update_fails_when_page_full() {
        let mut p = Page::new();
        let s = p.insert(&[1u8; 16]).unwrap();
        while p.insert(&[2u8; 200]).is_some() {}
        let big = vec![3u8; 4000];
        assert!(!p.update(s, &big), "no room to grow");
        assert_eq!(
            p.get(s),
            Some(&[1u8; 16][..]),
            "failed update must not clobber"
        );
    }

    #[test]
    fn iter_skips_dead() {
        let mut p = Page::new();
        let a = p.insert(b"a").unwrap();
        let _b = p.insert(b"b").unwrap();
        p.delete(a);
        let live: Vec<_> = p.iter().map(|(_, b)| b.to_vec()).collect();
        assert_eq!(live, vec![b"b".to_vec()]);
    }
}
