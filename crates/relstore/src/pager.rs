//! Paged file I/O behind an LRU page cache.
//!
//! The pager owns one file laid out as consecutive [`PAGE_SIZE`] pages
//! (page `n` lives at byte offset `n * PAGE_SIZE`; the file carries no
//! header of its own — page 0 belongs to the caller). Reads and writes go
//! through a bounded cache with dirty tracking, so repeated access to hot
//! pages costs no I/O and a checkpoint writes only the pages that actually
//! changed. Eviction of a dirty page writes it back first; nothing is
//! durable until [`Pager::flush`], which writes every dirty page and
//! fsyncs.
//!
//! Crash safety is *not* this layer's job: in-place page writes can tear.
//! The caller pairs the pager with a [`crate::wal::Wal`] that journals
//! enough state (logical ops and pre-images of overwritten pages) to
//! restore consistency on reopen.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::StoreError;
use crate::page::PAGE_SIZE;
use crate::vfs::{real_fs, OpenMode, StorageFs, VfsFile};

/// Default cache capacity in pages (2 MiB at 8 KiB pages).
pub const DEFAULT_CACHE_PAGES: usize = 256;

struct Frame {
    data: Box<[u8]>, // always PAGE_SIZE long
    dirty: bool,
    last_used: u64,
}

/// Cumulative pager counters (cache behaviour and real I/O).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PagerStats {
    /// Page requests served from the cache.
    pub hits: u64,
    /// Page requests that had to read the file.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Pages physically read from the file.
    pub pages_read: u64,
    /// Pages physically written to the file.
    pub pages_written: u64,
}

/// A paged file with an LRU cache and dirty-page tracking.
pub struct Pager {
    file: Box<dyn VfsFile>,
    path: PathBuf,
    page_count: u64,
    capacity: usize,
    frames: HashMap<u64, Frame>,
    tick: u64,
    stats: PagerStats,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("path", &self.path)
            .field("page_count", &self.page_count)
            .field("cached", &self.frames.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Pager {
    /// Open (or create) the page file with the default cache capacity.
    pub fn open(path: impl AsRef<Path>) -> Result<Pager, StoreError> {
        Self::with_capacity(path, DEFAULT_CACHE_PAGES)
    }

    /// Open (or create) the page file with room for `capacity` cached
    /// pages (minimum 1).
    pub fn with_capacity(path: impl AsRef<Path>, capacity: usize) -> Result<Pager, StoreError> {
        Self::with_capacity_on(real_fs(), path, capacity)
    }

    /// [`Pager::with_capacity`] against an explicit [`StorageFs`] — the
    /// fault-injection entry point.
    pub fn with_capacity_on(
        fs: Arc<dyn StorageFs>,
        path: impl AsRef<Path>,
        capacity: usize,
    ) -> Result<Pager, StoreError> {
        let path = path.as_ref().to_path_buf();
        let file = fs.open(&path, OpenMode::Open)?;
        let len = file.len()?;
        // A length that is not a page multiple means a grow-write tore
        // (crash or short write mid-extension). Everything durable ends at
        // the last full page — the partial tail is garbage the caller's
        // undo journal rolls back or a future page write overwrites — so
        // round down rather than refuse to open.
        Ok(Pager {
            file,
            path,
            page_count: len / PAGE_SIZE as u64,
            capacity: capacity.max(1),
            frames: HashMap::new(),
            tick: 0,
            stats: PagerStats::default(),
        })
    }

    /// Pages currently in the file (cached-but-unflushed growth included).
    pub fn page_count(&self) -> u64 {
        self.page_count
    }

    /// Cumulative cache/I/O counters.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Pages currently held in the cache.
    pub fn cached_pages(&self) -> usize {
        self.frames.len()
    }

    /// Pages in the cache with unflushed modifications.
    pub fn dirty_pages(&self) -> usize {
        self.frames.values().filter(|f| f.dirty).count()
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    fn touch(&mut self, page_no: u64) {
        self.tick += 1;
        if let Some(frame) = self.frames.get_mut(&page_no) {
            frame.last_used = self.tick;
        }
    }

    fn write_frame_to_file(
        file: &mut dyn VfsFile,
        stats: &mut PagerStats,
        page_no: u64,
        data: &[u8],
    ) -> Result<(), StoreError> {
        file.write_at(page_no * PAGE_SIZE as u64, data)?;
        stats.pages_written += 1;
        Ok(())
    }

    /// Evict least-recently-used frames until the cache fits `capacity`,
    /// keeping `protect` resident. Dirty victims are written back (without
    /// fsync — durability still comes from `flush`).
    fn evict_to_capacity(&mut self, protect: u64) -> Result<(), StoreError> {
        while self.frames.len() > self.capacity {
            let victim = self
                .frames
                .iter()
                .filter(|(no, _)| **no != protect)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(no, _)| *no);
            let Some(no) = victim else { break };
            let Some(frame) = self.frames.remove(&no) else {
                return Err(StoreError::Corrupt(format!(
                    "pager: eviction victim page {no} vanished from the cache"
                )));
            };
            if frame.dirty {
                Self::write_frame_to_file(self.file.as_mut(), &mut self.stats, no, &frame.data)?;
            }
            self.stats.evictions += 1;
        }
        Ok(())
    }

    /// Read page `page_no` (must be `< page_count`). The returned slice is
    /// always `PAGE_SIZE` bytes, served from the cache when resident.
    pub fn read_page(&mut self, page_no: u64) -> Result<&[u8], StoreError> {
        if page_no >= self.page_count {
            return Err(StoreError::Corrupt(format!(
                "read of page {page_no} beyond page count {}",
                self.page_count
            )));
        }
        if self.frames.contains_key(&page_no) {
            self.stats.hits += 1;
            self.touch(page_no);
        } else {
            self.stats.misses += 1;
            self.stats.pages_read += 1;
            // Pages past the physical end-of-file (page_count can run ahead
            // of the file before a flush) read back as zeroes.
            let mut data = vec![0u8; PAGE_SIZE];
            let base = page_no * PAGE_SIZE as u64;
            let mut filled = 0;
            while filled < PAGE_SIZE {
                match self.file.read_at(base + filled as u64, &mut data[filled..]) {
                    Ok(0) => break, // hole page: remainder stays zero
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e.into()),
                }
            }
            self.tick += 1;
            self.frames.insert(
                page_no,
                Frame {
                    data: data.into_boxed_slice(),
                    dirty: false,
                    last_used: self.tick,
                },
            );
            self.evict_to_capacity(page_no)?;
        }
        match self.frames.get(&page_no) {
            Some(frame) => Ok(&frame.data),
            None => Err(StoreError::Corrupt(format!(
                "pager: page {page_no} missing from the cache right after insertion"
            ))),
        }
    }

    /// Write a full page. Pages may be written past the current end; the
    /// file grows (any skipped pages read back as zeroes). The write lands
    /// in the cache as dirty and reaches the file on eviction or
    /// [`Pager::flush`].
    pub fn write_page(&mut self, page_no: u64, bytes: &[u8]) -> Result<(), StoreError> {
        if bytes.len() != PAGE_SIZE {
            return Err(StoreError::Corrupt(format!(
                "page write of {} bytes (expected {PAGE_SIZE})",
                bytes.len()
            )));
        }
        self.tick += 1;
        match self.frames.get_mut(&page_no) {
            Some(frame) => {
                frame.data.copy_from_slice(bytes);
                frame.dirty = true;
                frame.last_used = self.tick;
            }
            None => {
                self.frames.insert(
                    page_no,
                    Frame {
                        data: bytes.to_vec().into_boxed_slice(),
                        dirty: true,
                        last_used: self.tick,
                    },
                );
            }
        }
        self.page_count = self.page_count.max(page_no + 1);
        self.evict_to_capacity(page_no)
    }

    /// Write every dirty page (ascending page order) and fsync the file.
    /// Returns how many pages were written.
    pub fn flush(&mut self) -> Result<u64, StoreError> {
        let mut dirty: Vec<u64> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(no, _)| *no)
            .collect();
        dirty.sort_unstable();
        let written = dirty.len() as u64;
        for no in dirty {
            let Some(frame) = self.frames.get_mut(&no) else {
                return Err(StoreError::Corrupt(format!(
                    "pager: dirty page {no} vanished from the cache mid-flush"
                )));
            };
            Self::write_frame_to_file(self.file.as_mut(), &mut self.stats, no, &frame.data)?;
            frame.dirty = false;
        }
        // A trailing all-zero page may never have been written explicitly;
        // make sure the file really spans page_count pages.
        let want = self.page_count * PAGE_SIZE as u64;
        if self.file.len()? < want {
            self.file.set_len(want)?;
        }
        self.file.sync_data()?;
        Ok(written)
    }

    /// Shrink (or grow, zero-filled) the file to exactly `page_count`
    /// pages, dropping cached frames beyond the new end.
    pub fn truncate(&mut self, page_count: u64) -> Result<(), StoreError> {
        self.frames.retain(|no, _| *no < page_count);
        self.file.set_len(page_count * PAGE_SIZE as u64)?;
        self.page_count = page_count;
        Ok(())
    }

    /// fsync without writing dirty pages (rarely what you want — prefer
    /// [`Pager::flush`]).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dataspread-pager-{name}-{}", std::process::id()))
    }

    fn page_of(byte: u8) -> Vec<u8> {
        vec![byte; PAGE_SIZE]
    }

    #[test]
    fn write_flush_reopen_roundtrip() {
        let path = temp("roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let mut p = Pager::open(&path).unwrap();
            assert_eq!(p.page_count(), 0);
            p.write_page(0, &page_of(0xAA)).unwrap();
            p.write_page(2, &page_of(0xCC)).unwrap(); // page 1 skipped: zeroes
            assert_eq!(p.page_count(), 3);
            assert_eq!(p.flush().unwrap(), 2);
        }
        let mut p = Pager::open(&path).unwrap();
        assert_eq!(p.page_count(), 3);
        assert_eq!(p.read_page(0).unwrap()[0], 0xAA);
        assert!(p.read_page(1).unwrap().iter().all(|&b| b == 0));
        assert_eq!(p.read_page(2).unwrap()[PAGE_SIZE - 1], 0xCC);
        assert!(p.read_page(3).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cache_hits_and_misses_counted() {
        let path = temp("stats");
        std::fs::remove_file(&path).ok();
        let mut p = Pager::open(&path).unwrap();
        p.write_page(0, &page_of(1)).unwrap();
        p.flush().unwrap();
        p.read_page(0).unwrap(); // cached by the write
        p.read_page(0).unwrap();
        let s = p.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
        assert_eq!(s.pages_written, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let path = temp("evict");
        std::fs::remove_file(&path).ok();
        let mut p = Pager::with_capacity(&path, 2).unwrap();
        for i in 0..5u64 {
            p.write_page(i, &page_of(i as u8 + 1)).unwrap();
        }
        assert!(p.cached_pages() <= 2);
        assert!(p.stats().evictions >= 3);
        // Evicted pages were written back; re-reading them round-trips.
        for i in 0..5u64 {
            assert_eq!(p.read_page(i).unwrap()[7], i as u8 + 1, "page {i}");
        }
        p.flush().unwrap();
        drop(p);
        let mut p = Pager::open(&path).unwrap();
        for i in 0..5u64 {
            assert_eq!(p.read_page(i).unwrap()[7], i as u8 + 1, "page {i}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unflushed_hole_pages_read_as_zeroes() {
        let path = temp("hole");
        std::fs::remove_file(&path).ok();
        let mut p = Pager::open(&path).unwrap();
        p.write_page(2, &page_of(5)).unwrap(); // pages 0..2 never written
        assert!(p.read_page(0).unwrap().iter().all(|&b| b == 0));
        assert!(p.read_page(1).unwrap().iter().all(|&b| b == 0));
        assert_eq!(p.read_page(2).unwrap()[0], 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_writes_only_dirty() {
        let path = temp("dirty");
        std::fs::remove_file(&path).ok();
        let mut p = Pager::open(&path).unwrap();
        p.write_page(0, &page_of(1)).unwrap();
        p.write_page(1, &page_of(2)).unwrap();
        assert_eq!(p.dirty_pages(), 2);
        assert_eq!(p.flush().unwrap(), 2);
        assert_eq!(p.dirty_pages(), 0);
        assert_eq!(p.flush().unwrap(), 0, "second flush writes nothing");
        p.write_page(1, &page_of(3)).unwrap();
        assert_eq!(p.flush().unwrap(), 1, "only the touched page");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_drops_tail() {
        let path = temp("trunc");
        std::fs::remove_file(&path).ok();
        let mut p = Pager::open(&path).unwrap();
        for i in 0..4u64 {
            p.write_page(i, &page_of(9)).unwrap();
        }
        p.flush().unwrap();
        p.truncate(1).unwrap();
        assert_eq!(p.page_count(), 1);
        assert!(p.read_page(1).is_err());
        drop(p);
        let p = Pager::open(&path).unwrap();
        assert_eq!(p.page_count(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_partial_page_and_tolerates_torn_tail() {
        let path = temp("badlen");
        std::fs::remove_file(&path).ok();
        let mut p = Pager::open(&path).unwrap();
        assert!(p.write_page(0, b"short").is_err());
        drop(p);
        // A torn grow-write (crash / short write) leaves a partial trailing
        // page; open rounds down to the last full page instead of refusing.
        std::fs::write(&path, vec![0x5Au8; PAGE_SIZE + 17]).unwrap();
        let mut p = Pager::open(&path).unwrap();
        assert_eq!(p.page_count(), 1);
        assert_eq!(p.read_page(0).unwrap()[0], 0x5A);
        assert!(p.read_page(1).is_err());
        std::fs::remove_file(&path).ok();
    }
}
