//! Single-file persistence for the database.
//!
//! DataSpread's storage lives inside PostgreSQL, which persists it. Our
//! embedded stand-in persists itself: `Database::save` writes a snapshot —
//! catalog, schemas, and raw heap pages — to one file; `Database::load`
//! restores it. The format is a straightforward length-prefixed layout
//! over the shared [`crate::codec`] primitives (no external serialization
//! crates, per the workspace dependency policy):
//!
//! ```text
//! magic "DSPR" | version u32 | max_columns u32 | table_count u32
//! per table:
//!   name (u32 len + bytes)
//!   column_count u32, per column: name (u32+bytes), type tag u8
//!   page_count u32, per page: PAGE_SIZE raw bytes + n_slots u16 +
//!     free_end u16 + live u16
//!   row_count u64
//! ```

use std::io::{self, Write};
use std::path::Path;
use std::sync::Arc;

use crate::codec::{self, Reader};
use crate::datum::DataType;
use crate::db::{Database, StorageConfig};
use crate::error::StoreError;
use crate::heap::HeapFile;
use crate::page::{Page, PAGE_SIZE};
use crate::schema::{ColumnDef, Schema};
use crate::table::Table;
use crate::vfs::{real_fs, OpenMode, StorageFs, VfsFile};

const MAGIC: &[u8; 4] = b"DSPR";
const VERSION: u32 = 1;

fn io_err(e: io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

/// A temp-file path in the same directory as `path` (rename across
/// filesystems is not atomic, so the temp file must be a sibling).
fn temp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

/// Adapts a [`VfsFile`] to `io::Write` for streaming through `BufWriter`.
struct VfsWriter<'a> {
    file: &'a mut dyn VfsFile,
    offset: u64,
}

impl Write for VfsWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.file.write_at(self.offset, buf)?;
        self.offset += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
        DataType::Bool => 3,
        DataType::Any => 4,
    }
}

fn tag_type(tag: u8) -> Result<DataType, StoreError> {
    Ok(match tag {
        0 => DataType::Int,
        1 => DataType::Float,
        2 => DataType::Text,
        3 => DataType::Bool,
        4 => DataType::Any,
        t => return Err(StoreError::Corrupt(format!("unknown type tag {t}"))),
    })
}

impl Database {
    /// Write a snapshot of the whole database to `path`.
    ///
    /// The write is atomic with respect to crashes: the snapshot streams to
    /// a sibling temp file, is fsynced, and only then renamed over `path`
    /// (rename within a directory is atomic on POSIX). A crash mid-save
    /// therefore leaves any previous snapshot at `path` untouched instead
    /// of a torn half-written file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        self.save_on(real_fs(), path)
    }

    /// [`Database::save`] against an explicit [`StorageFs`] — the
    /// fault-injection entry point.
    pub fn save_on(
        &self,
        fs: Arc<dyn StorageFs>,
        path: impl AsRef<Path>,
    ) -> Result<(), StoreError> {
        let path = path.as_ref();
        let tmp_path = temp_sibling(path);
        let result = self.save_to(fs.as_ref(), &tmp_path).and_then(|()| {
            fs.rename(&tmp_path, path).map_err(io_err)?;
            // Pin the rename itself (best-effort: directory handles cannot
            // be fsynced on every platform).
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                fs.sync_dir(parent).ok();
            }
            Ok(())
        });
        if result.is_err() {
            fs.remove_file(&tmp_path).ok();
        }
        result
    }

    fn save_to(&self, fs: &dyn StorageFs, path: &Path) -> Result<(), StoreError> {
        // Stream through a buffered writer (codec builds each small piece
        // in a reused scratch buffer; raw page bytes go straight through)
        // so saving never holds a second full copy of the database.
        let mut file = fs.open(path, OpenMode::Truncate).map_err(io_err)?;
        let mut out = io::BufWriter::new(VfsWriter {
            file: file.as_mut(),
            offset: 0,
        });
        let mut buf = Vec::new();
        codec::put_bytes(&mut buf, MAGIC);
        codec::put_u32(&mut buf, VERSION);
        codec::put_u32(&mut buf, self.config().max_columns as u32);
        let names: Vec<&str> = self.table_names().collect();
        codec::put_u32(&mut buf, names.len() as u32);
        out.write_all(&buf).map_err(io_err)?;
        for name in names {
            let table = self.table(name)?;
            buf.clear();
            codec::put_str(&mut buf, name);
            let schema = table.schema();
            codec::put_u32(&mut buf, schema.len() as u32);
            for col in schema.columns() {
                codec::put_str(&mut buf, &col.name);
                codec::put_u8(&mut buf, type_tag(col.ty));
            }
            let pages = table.heap_pages();
            codec::put_u32(&mut buf, pages.len() as u32);
            out.write_all(&buf).map_err(io_err)?;
            for page in pages {
                let (bytes, n_slots, free_end, live) = page.raw_parts();
                out.write_all(bytes).map_err(io_err)?;
                buf.clear();
                codec::put_u16(&mut buf, n_slots);
                codec::put_u16(&mut buf, free_end);
                codec::put_u16(&mut buf, live);
                out.write_all(&buf).map_err(io_err)?;
            }
            buf.clear();
            codec::put_u64(&mut buf, table.row_count());
            out.write_all(&buf).map_err(io_err)?;
        }
        out.into_inner()
            .map_err(|e| StoreError::Io(format!("snapshot flush: {e}")))?;
        // The rename must not be reordered before the data hits the disk.
        file.sync_data().map_err(io_err)
    }

    /// Restore a snapshot previously written by [`Database::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Database, StoreError> {
        Self::load_on(real_fs(), path)
    }

    /// [`Database::load`] against an explicit [`StorageFs`].
    pub fn load_on(fs: Arc<dyn StorageFs>, path: impl AsRef<Path>) -> Result<Database, StoreError> {
        let bytes = fs.read(path.as_ref()).map_err(io_err)?;
        let mut inp = Reader::new(&bytes);
        if inp.take(4)? != MAGIC {
            return Err(StoreError::Corrupt("bad magic".into()));
        }
        let version = inp.u32()?;
        if version != VERSION {
            return Err(StoreError::Corrupt(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let max_columns = inp.u32()? as usize;
        let mut db = Database::with_config(StorageConfig { max_columns });
        let n_tables = inp.u32()?;
        for _ in 0..n_tables {
            let name = inp.str()?;
            let n_cols = inp.u32()?;
            let mut cols = Vec::with_capacity(n_cols.min(1 << 16) as usize);
            for _ in 0..n_cols {
                let cname = inp.str()?;
                cols.push(ColumnDef::new(cname, tag_type(inp.u8()?)?));
            }
            let n_pages = inp.u32()?;
            let mut heap = HeapFile::new();
            let mut live_total = 0u64;
            for _ in 0..n_pages {
                let page_bytes = inp.take(PAGE_SIZE)?.to_vec();
                let n_slots = inp.u16()?;
                let free_end = inp.u16()?;
                let live = inp.u16()?;
                if (free_end as usize) > PAGE_SIZE {
                    return Err(StoreError::Corrupt("free_end beyond page".into()));
                }
                live_total += live as u64;
                heap.push_raw_page(Page::from_raw_parts(page_bytes, n_slots, free_end, live)?);
            }
            heap.set_live_count(live_total);
            let row_count = inp.u64()?;
            if row_count != live_total {
                return Err(StoreError::Corrupt(format!(
                    "row count {row_count} != live tuples {live_total}"
                )));
            }
            let table = Table::from_parts(&name, Schema::new(cols), heap, row_count)
                .with_max_columns(max_columns);
            db.insert_table(table)?;
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Datum;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dataspread-persist-{name}-{}", std::process::id()))
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        let t = db
            .create_table(
                "t1",
                Schema::new(vec![
                    ColumnDef::new("id", DataType::Int),
                    ColumnDef::new("name", DataType::Text),
                ]),
            )
            .unwrap();
        for i in 0..1000 {
            t.insert(&[Datum::Int(i), Datum::Text(format!("row-{i}"))])
                .unwrap();
        }
        // Deletions and updates leave realistic page states.
        let tids: Vec<_> = t.scan().map(|(tid, _)| tid).collect();
        for tid in tids.iter().step_by(7) {
            t.delete(*tid);
        }
        let survivor = t.scan().next().unwrap().0;
        t.update(survivor, &[Datum::Int(-1), Datum::Text("updated".into())])
            .unwrap();
        db.create_table(
            "empty",
            Schema::new(vec![ColumnDef::new("x", DataType::Any)]),
        )
        .unwrap();
        db
    }

    #[test]
    fn save_load_roundtrip() {
        let db = sample_db();
        let path = temp_path("roundtrip");
        db.save(&path).unwrap();
        let loaded = Database::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            loaded.table_names().collect::<Vec<_>>(),
            db.table_names().collect::<Vec<_>>()
        );
        let a: Vec<_> = db.table("t1").unwrap().scan().collect();
        let b: Vec<_> = loaded.table("t1").unwrap().scan().collect();
        assert_eq!(a, b, "tuple ids and contents survive");
        assert_eq!(
            loaded.table("t1").unwrap().row_count(),
            db.table("t1").unwrap().row_count()
        );
        assert_eq!(loaded.table("empty").unwrap().row_count(), 0);
    }

    #[test]
    fn loaded_db_accepts_writes() {
        let db = sample_db();
        let path = temp_path("writes");
        db.save(&path).unwrap();
        let mut loaded = Database::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let t = loaded.table_mut("t1").unwrap();
        let tid = t
            .insert(&[Datum::Int(9999), Datum::Text("after-load".into())])
            .unwrap();
        assert_eq!(t.fetch(tid).unwrap()[0], Datum::Int(9999));
        // Old tuples still addressable after new writes.
        let first = t.scan().next().unwrap().0;
        assert!(t.fetch(first).is_ok());
    }

    #[test]
    fn rejects_garbage_files() {
        let path = temp_path("garbage");
        std::fs::write(&path, b"not a database").unwrap();
        assert!(matches!(Database::load(&path), Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
        assert!(Database::load(temp_path("missing")).is_err());
    }

    #[test]
    fn save_is_atomic_replace() {
        let path = temp_path("atomic");
        let db = sample_db();
        db.save(&path).unwrap();
        let first = std::fs::read(&path).unwrap();
        // Overwriting an existing snapshot goes through a temp sibling…
        let mut db2 = sample_db();
        db2.table_mut("t1")
            .unwrap()
            .insert(&[Datum::Int(424242), Datum::Text("second".into())])
            .unwrap();
        db2.save(&path).unwrap();
        let second = std::fs::read(&path).unwrap();
        assert_ne!(first, second, "snapshot content replaced");
        // …and the temp file does not survive a successful save.
        let dir = path.parent().unwrap();
        let base = path.file_name().unwrap().to_string_lossy().to_string();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .filter(|n| n.starts_with(&base) && n.contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stale temp files: {leftovers:?}");
        let loaded = Database::load(&path).unwrap();
        assert_eq!(
            loaded.table("t1").unwrap().row_count(),
            db2.table("t1").unwrap().row_count()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_save_leaves_existing_snapshot_intact() {
        let path = temp_path("atomic-fail");
        let db = sample_db();
        db.save(&path).unwrap();
        let before = std::fs::read(&path).unwrap();
        // A save to an unwritable location errors without touching `path`.
        let bogus = std::path::Path::new("/nonexistent-dir-dspr/snapshot.db");
        assert!(matches!(db.save(bogus), Err(StoreError::Io(_))));
        assert_eq!(std::fs::read(&path).unwrap(), before);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_snapshot() {
        let db = sample_db();
        let path = temp_path("truncated");
        db.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(Database::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
