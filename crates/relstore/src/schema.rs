//! Table schemas.

use crate::datum::{DataType, Datum};
use crate::error::StoreError;

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    pub fn new(columns: Vec<ColumnDef>) -> Self {
        Schema { columns }
    }

    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by name (case-sensitive first, then insensitive).
    pub fn index_of(&self, name: &str) -> Result<usize, StoreError> {
        if let Some(i) = self.columns.iter().position(|c| c.name == name) {
            return Ok(i);
        }
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| StoreError::NoSuchColumn(name.to_string()))
    }

    /// Validate a row against the schema.
    pub fn validate(&self, row: &[Datum]) -> Result<(), StoreError> {
        if row.len() != self.columns.len() {
            return Err(StoreError::SchemaMismatch(format!(
                "expected {} columns, got {}",
                self.columns.len(),
                row.len()
            )));
        }
        for (d, c) in row.iter().zip(&self.columns) {
            if !d.fits(c.ty) {
                return Err(StoreError::SchemaMismatch(format!(
                    "datum {d:?} does not fit column {} ({:?})",
                    c.name, c.ty
                )));
            }
        }
        Ok(())
    }

    /// Append a column (used by ROM translators growing the sheet width).
    pub fn push_column(&mut self, col: ColumnDef) {
        self.columns.push(col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Int),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("score", DataType::Float),
        ])
    }

    #[test]
    fn index_of_is_case_insensitive_fallback() {
        let s = schema();
        assert_eq!(s.index_of("name").unwrap(), 1);
        assert_eq!(s.index_of("NAME").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn validate_checks_arity_and_types() {
        let s = schema();
        assert!(s
            .validate(&[Datum::Int(1), Datum::Text("a".into()), Datum::Float(0.5)])
            .is_ok());
        // Int widens to Float.
        assert!(s
            .validate(&[Datum::Int(1), Datum::Text("a".into()), Datum::Int(2)])
            .is_ok());
        // Nulls fit anywhere.
        assert!(s.validate(&[Datum::Null, Datum::Null, Datum::Null]).is_ok());
        assert!(s.validate(&[Datum::Int(1)]).is_err());
        assert!(s
            .validate(&[
                Datum::Text("x".into()),
                Datum::Text("a".into()),
                Datum::Null
            ])
            .is_err());
    }
}
