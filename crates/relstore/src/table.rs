//! Tables: a schema plus a heap file, with storage accounting.

use crate::datum::{decode_row, encode_row, Datum};
use crate::error::StoreError;
use crate::heap::{HeapFile, TupleId};
use crate::page::PAGE_SIZE;
use crate::schema::{ColumnDef, Schema};

/// Per-tuple header overhead in bytes, modelled on PostgreSQL (23-byte heap
/// tuple header + item pointer + alignment ≈ the paper's measured
/// s4/s5 ≈ 50 bytes per row).
pub const TUPLE_HEADER_BYTES: u64 = 46;
/// Per-column catalog overhead (paper's measured s3 = 40 bytes).
pub const COLUMN_CATALOG_BYTES: u64 = 40;

/// A stored table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    heap: HeapFile,
    row_count: u64,
    /// Optional cap on the column count (paper Appendix A-C4: present-day
    /// databases limit relation width; PostgreSQL allows 1600).
    max_columns: Option<usize>,
    /// Value of the owning [`Database`](crate::Database)'s change counter
    /// the last time *this* table was handed out mutably (or created /
    /// renamed). Ticks are globally unique and monotone, so an unchanged
    /// stamp means this specific table cannot have changed — even while
    /// other tables in the same database were mutated. 0 for a
    /// free-standing table.
    last_change: u64,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            heap: HeapFile::new(),
            row_count: 0,
            max_columns: None,
            last_change: 0,
        }
    }

    pub fn with_max_columns(mut self, cap: usize) -> Self {
        self.max_columns = Some(cap);
        self
    }

    /// Reassemble a table from persisted parts.
    pub fn from_parts(name: &str, schema: Schema, heap: HeapFile, row_count: u64) -> Self {
        Table {
            name: name.to_string(),
            schema,
            heap,
            row_count,
            max_columns: None,
            last_change: 0,
        }
    }

    /// Persistence view of the heap pages.
    pub fn heap_pages(&self) -> &[crate::page::Page] {
        self.heap.pages()
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn row_count(&self) -> u64 {
        self.row_count
    }

    /// Per-table change stamp: the owning database's change-counter tick
    /// at the last mutable hand-out of this table. Observers (e.g. TOM
    /// regions at checkpoint time) compare stamps to skip work for tables
    /// that provably did not change — without being dirtied by mutations
    /// to *other* tables.
    pub fn last_change(&self) -> u64 {
        self.last_change
    }

    /// Record that this table was handed out mutably at `tick` (called by
    /// the owning [`Database`](crate::Database)).
    pub(crate) fn note_change(&mut self, tick: u64) {
        self.last_change = tick;
    }

    /// Append a column to the schema. Existing rows are *not* rewritten;
    /// readers pad short rows with NULLs (`fetch` handles this), mirroring
    /// how real stores add nullable columns without a table rewrite.
    pub fn add_column(&mut self, col: ColumnDef) -> Result<(), StoreError> {
        if let Some(cap) = self.max_columns {
            if self.schema.len() + 1 > cap {
                return Err(StoreError::LimitExceeded(format!(
                    "table {} would exceed {cap} columns",
                    self.name
                )));
            }
        }
        self.schema.push_column(col);
        Ok(())
    }

    /// Insert a row, returning its stable tuple id.
    pub fn insert(&mut self, row: &[Datum]) -> Result<TupleId, StoreError> {
        self.schema.validate(row)?;
        let tid = self.heap.insert(&encode_row(row))?;
        self.row_count += 1;
        Ok(tid)
    }

    /// Insert a row that may be shorter than the schema (missing trailing
    /// columns read back as NULL).
    pub fn insert_prefix(&mut self, row: &[Datum]) -> Result<TupleId, StoreError> {
        if row.len() > self.schema.len() {
            return Err(StoreError::SchemaMismatch(format!(
                "{} datums for {} columns",
                row.len(),
                self.schema.len()
            )));
        }
        for (d, c) in row.iter().zip(self.schema.columns()) {
            if !d.fits(c.ty) {
                return Err(StoreError::SchemaMismatch(format!(
                    "datum {d:?} does not fit column {}",
                    c.name
                )));
            }
        }
        let tid = self.heap.insert(&encode_row(row))?;
        self.row_count += 1;
        Ok(tid)
    }

    /// Fetch a row, padding trailing NULLs up to the schema width.
    pub fn fetch(&self, tid: TupleId) -> Result<Vec<Datum>, StoreError> {
        let bytes = self.heap.get(tid).ok_or(StoreError::BadTupleId)?;
        let mut row = decode_row(bytes)?;
        if row.len() > self.schema.len() {
            return Err(StoreError::Corrupt("row wider than schema".into()));
        }
        row.resize(self.schema.len(), Datum::Null);
        Ok(row)
    }

    /// Fetch only the datums at `cols` (sorted, 0-based), skipping the rest
    /// of the tuple without decoding — the projection fast path for wide
    /// rows. Missing trailing columns read as NULL.
    pub fn fetch_cols(&self, tid: TupleId, cols: &[usize]) -> Result<Vec<Datum>, StoreError> {
        let bytes = self.heap.get(tid).ok_or(StoreError::BadTupleId)?;
        crate::datum::decode_row_project(bytes, cols)
    }

    /// Update a row; returns the (possibly relocated) tuple id.
    pub fn update(&mut self, tid: TupleId, row: &[Datum]) -> Result<TupleId, StoreError> {
        self.schema.validate(row)?;
        self.heap.update(tid, &encode_row(row))
    }

    /// Delete a row; returns true when it was live.
    pub fn delete(&mut self, tid: TupleId) -> bool {
        let was = self.heap.delete(tid);
        if was {
            self.row_count -= 1;
        }
        was
    }

    /// Scan all live rows (decoded, padded).
    pub fn scan(&self) -> impl Iterator<Item = (TupleId, Vec<Datum>)> + '_ {
        let width = self.schema.len();
        self.heap.scan().map(move |(tid, bytes)| {
            let mut row = decode_row(bytes).expect("stored rows decode");
            row.resize(width, Datum::Null);
            (tid, row)
        })
    }

    /// Physical bytes: whole heap pages, at least one page (a freshly
    /// created table costs s1 = one 8 KB page in the paper's model).
    pub fn physical_bytes(&self) -> u64 {
        self.heap.physical_bytes().max(PAGE_SIZE as u64)
    }

    /// Accounted bytes following the paper's cost structure: one page of
    /// table overhead + per-column catalog entries + per-row headers + data.
    pub fn accounted_bytes(&self) -> u64 {
        let data: u64 = self
            .scan()
            .map(|(_, row)| row.iter().map(|d| d.encoded_len() as u64).sum::<u64>())
            .sum();
        PAGE_SIZE as u64
            + COLUMN_CATALOG_BYTES * self.schema.len() as u64
            + TUPLE_HEADER_BYTES * self.row_count
            + data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::DataType;

    fn table() -> Table {
        Table::new(
            "t",
            Schema::new(vec![
                ColumnDef::new("id", DataType::Int),
                ColumnDef::new("name", DataType::Text),
            ]),
        )
    }

    #[test]
    fn insert_fetch_roundtrip() {
        let mut t = table();
        let tid = t.insert(&[Datum::Int(1), Datum::Text("a".into())]).unwrap();
        assert_eq!(
            t.fetch(tid).unwrap(),
            vec![Datum::Int(1), Datum::Text("a".into())]
        );
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn schema_violations_rejected() {
        let mut t = table();
        assert!(t.insert(&[Datum::Int(1)]).is_err());
        assert!(t
            .insert(&[Datum::Text("x".into()), Datum::Text("a".into())])
            .is_err());
    }

    #[test]
    fn update_and_delete() {
        let mut t = table();
        let tid = t.insert(&[Datum::Int(1), Datum::Text("a".into())]).unwrap();
        let tid2 = t
            .update(tid, &[Datum::Int(2), Datum::Text("b".into())])
            .unwrap();
        assert_eq!(t.fetch(tid2).unwrap()[0], Datum::Int(2));
        assert!(t.delete(tid2));
        assert_eq!(t.row_count(), 0);
        assert!(t.fetch(tid2).is_err());
    }

    #[test]
    fn add_column_pads_old_rows_with_null() {
        let mut t = table();
        let tid = t.insert(&[Datum::Int(1), Datum::Text("a".into())]).unwrap();
        t.add_column(ColumnDef::new("extra", DataType::Float))
            .unwrap();
        let row = t.fetch(tid).unwrap();
        assert_eq!(row.len(), 3);
        assert_eq!(row[2], Datum::Null);
        // New rows use the full width.
        t.insert(&[Datum::Int(2), Datum::Text("b".into()), Datum::Float(0.5)])
            .unwrap();
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn max_columns_enforced() {
        let mut t = table().with_max_columns(2);
        assert!(matches!(
            t.add_column(ColumnDef::new("c3", DataType::Int)),
            Err(StoreError::LimitExceeded(_))
        ));
    }

    #[test]
    fn insert_prefix_allows_short_rows() {
        let mut t = table();
        let tid = t.insert_prefix(&[Datum::Int(9)]).unwrap();
        let row = t.fetch(tid).unwrap();
        assert_eq!(row, vec![Datum::Int(9), Datum::Null]);
        assert!(t
            .insert_prefix(&[Datum::Int(1), Datum::Null, Datum::Null])
            .is_err());
    }

    #[test]
    fn accounting_includes_all_components() {
        let mut t = table();
        let empty = t.accounted_bytes();
        assert_eq!(empty, PAGE_SIZE as u64 + 2 * COLUMN_CATALOG_BYTES);
        t.insert(&[Datum::Int(1), Datum::Text("abcd".into())])
            .unwrap();
        let one = t.accounted_bytes();
        assert!(one > empty + TUPLE_HEADER_BYTES);
        assert!(t.physical_bytes() >= PAGE_SIZE as u64);
    }
}
