//! VFS-style storage abstraction with deterministic fault injection.
//!
//! Every file touchpoint in the store — the pager, the WAL, snapshot
//! persistence, and the engine's durable layer above them — goes through
//! [`StorageFs`] instead of `std::fs` directly. Production code uses
//! [`RealFs`] (the default everywhere; zero behaviour change), while the
//! fault suites wrap it in a [`FaultFs`] that executes a *scripted fault
//! schedule*: fail the Nth write, cut a write short, fail an fsync, report
//! ENOSPC, refuse an open or rename. Schedules are deterministic — the
//! same op sequence against the same schedule injects the same faults —
//! which is what lets the chaos suites replay a failing case from its
//! logged seed.
//!
//! Files are addressed positionally ([`VfsFile::read_at`] /
//! [`VfsFile::write_at`]) so no hidden cursor state survives a failed
//! operation; a short write really does leave a torn prefix behind, the
//! way a crashed `write(2)` would.
//!
//! The fault model is write-side: reads are passed through un-faulted
//! (a read failure surfaces naturally as corruption to the CRC-checked
//! layers above), while writes, fsyncs, opens, renames, and truncations
//! can each be failed on schedule. A failed injected fsync does *not*
//! un-write the data beneath it — exactly like a real failed fsync, the
//! caller cannot know what subset reached the platter, which is why the
//! layers above must treat the failure as permanent (see
//! [`crate::wal::SharedWal`]'s poisoning contract).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// How [`StorageFs::open`] should treat the file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpenMode {
    /// Read/write; create when missing; keep existing contents.
    Open,
    /// Read/write; create when missing; truncate existing contents.
    Truncate,
    /// Read/write an existing file; error when missing.
    Existing,
    /// Read-only on an existing file; error when missing.
    Read,
}

/// One open file handle behind the VFS. Positional I/O only — there is no
/// seek cursor to get out of sync with the caller's bookkeeping after a
/// failed operation.
pub trait VfsFile: Send + Sync {
    /// Read up to `buf.len()` bytes at `offset`; returns the count read
    /// (0 at or past end-of-file).
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize>;

    /// Write all of `data` at `offset` (growing the file as needed). On
    /// error an unspecified prefix may have been written — torn-write
    /// semantics, which the WAL's CRC framing and the pager's flush
    /// protocol are built to absorb.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()>;

    /// Truncate or zero-extend to exactly `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;

    /// Current file length in bytes.
    fn len(&self) -> io::Result<u64>;

    /// True when the file is empty (zero bytes).
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Force written data to stable storage (`fdatasync`). The commit
    /// point of every durability protocol above.
    fn sync_data(&mut self) -> io::Result<()>;

    /// A duplicate handle sharing the same underlying file, for fsyncing
    /// outside whatever lock guards writes.
    fn try_clone(&self) -> io::Result<Box<dyn VfsFile>>;

    /// Read the whole file from `offset` 0 to EOF.
    fn read_to_end_vec(&mut self) -> io::Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut off = 0u64;
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match self.read_at(off, &mut chunk) {
                Ok(0) => return Ok(out),
                Ok(n) => {
                    out.extend_from_slice(&chunk[..n]);
                    off += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// The filesystem surface the store needs. Object-safe so a
/// `Arc<dyn StorageFs>` threads through every layer.
pub trait StorageFs: Send + Sync {
    /// Open `path` under `mode`.
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn VfsFile>>;

    /// Atomically rename `from` to `to` (same directory).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Delete a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Best-effort fsync of a directory (pins renames/creations).
    fn sync_dir(&self, path: &Path) -> io::Result<()>;

    /// True when `path` names an existing file.
    fn exists(&self, path: &Path) -> bool;

    /// Read a whole file (error when missing).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.open(path, OpenMode::Read)?.read_to_end_vec()
    }
}

/// The default [`StorageFs`]: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

/// A fresh handle on the real filesystem (the default everywhere).
pub fn real_fs() -> Arc<dyn StorageFs> {
    Arc::new(RealFs)
}

struct RealFile {
    file: File,
}

impl VfsFile for RealFile {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read(buf)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(data)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn sync_data(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn try_clone(&self) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile {
            file: self.file.try_clone()?,
        }))
    }
}

impl StorageFs for RealFs {
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn VfsFile>> {
        let mut opts = OpenOptions::new();
        match mode {
            OpenMode::Open => opts.read(true).write(true).create(true).truncate(false),
            OpenMode::Truncate => opts.read(true).write(true).create(true).truncate(true),
            OpenMode::Existing => opts.read(true).write(true),
            OpenMode::Read => opts.read(true),
        };
        Ok(Box::new(RealFile {
            file: opts.open(path)?,
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        // Directory handles cannot be fsynced on every platform; opening
        // may legitimately fail, and that is not a storage fault.
        if let Ok(dir) = File::open(path) {
            dir.sync_all().ok();
        }
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

// ------------------------------------------------------- fault injection --

/// The operation classes a fault schedule can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// `write_at` on any file.
    Write,
    /// `sync_data` on any file.
    Sync,
    /// `open` of a file.
    OpenFile,
    /// `rename`.
    Rename,
    /// `set_len` (truncation / extension).
    SetLen,
    /// `remove_file`.
    Remove,
}

/// What an armed fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Generic injected I/O error (EIO-flavoured).
    Io,
    /// "No space left on device".
    Enospc,
    /// Write the first half of the payload, then fail — a torn write.
    /// Only meaningful on [`FaultOp::Write`]; elsewhere it acts like
    /// [`FaultKind::Io`].
    ShortWrite,
}

impl FaultKind {
    fn to_error(self) -> io::Error {
        match self {
            FaultKind::Io => io::Error::other("injected I/O error"),
            FaultKind::Enospc => io::Error::other("injected: No space left on device"),
            FaultKind::ShortWrite => io::Error::other("injected short write"),
        }
    }
}

/// One scripted fault: fire on the `after`-th matching operation
/// (0-based), optionally restricted to paths containing a substring,
/// optionally sticky (keep failing every later matching op — how ENOSPC
/// behaves on a genuinely full disk).
#[derive(Clone, Debug)]
pub struct FaultRule {
    pub op: FaultOp,
    pub after: u64,
    pub kind: FaultKind,
    pub sticky: bool,
    pub path_contains: Option<String>,
}

impl FaultRule {
    pub fn new(op: FaultOp, after: u64, kind: FaultKind) -> FaultRule {
        FaultRule {
            op,
            after,
            kind,
            sticky: false,
            path_contains: None,
        }
    }

    /// Keep failing every matching op from `after` onwards.
    pub fn sticky(mut self) -> FaultRule {
        self.sticky = true;
        self
    }

    /// Only match operations whose path contains `substr`.
    pub fn on_path(mut self, substr: impl Into<String>) -> FaultRule {
        self.path_contains = Some(substr.into());
        self
    }
}

#[derive(Default)]
struct PlanInner {
    /// Rules plus each rule's private matched-op counter.
    rules: Vec<(FaultRule, u64)>,
    /// Global per-class op counters (counted whether or not a rule fires) —
    /// the probe a test uses to enumerate every fault point of a workload.
    ops: HashMap<FaultOp, u64>,
    /// Human-readable record of every injected fault, in order.
    log: Vec<String>,
}

/// A shared, mutable fault schedule. Clone the `Arc` into a [`FaultFs`];
/// keep a handle to re-arm, disarm, or inspect what fired.
#[derive(Default)]
pub struct FaultPlan {
    inner: Mutex<PlanInner>,
}

impl FaultPlan {
    pub fn new() -> Arc<FaultPlan> {
        Arc::new(FaultPlan::default())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PlanInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Arm one rule (keeps existing rules).
    pub fn push(&self, rule: FaultRule) {
        self.lock().rules.push((rule, 0));
    }

    /// Replace the whole schedule (op counters and log are kept).
    pub fn set_rules(&self, rules: Vec<FaultRule>) {
        self.lock().rules = rules.into_iter().map(|r| (r, 0)).collect();
    }

    /// Drop every rule: the filesystem heals (op counting continues).
    pub fn disarm(&self) {
        self.lock().rules.clear();
    }

    /// Operations of `op`'s class seen so far (fired or not).
    pub fn op_count(&self, op: FaultOp) -> u64 {
        self.lock().ops.get(&op).copied().unwrap_or(0)
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.lock().log.len() as u64
    }

    /// The injection log, oldest first (`"Write #3 on …/wal.log: ShortWrite"`).
    pub fn log(&self) -> Vec<String> {
        self.lock().log.clone()
    }

    /// Count the op, evaluate the schedule, return the fault to inject (if
    /// any). The first firing rule wins, but every matching rule's counter
    /// advances, so rule order never changes which ops later rules see.
    fn check(&self, op: FaultOp, path: &Path) -> Option<FaultKind> {
        let mut inner = self.lock();
        let count = inner.ops.entry(op).or_insert(0);
        let op_index = *count;
        *count += 1;
        let path_str = path.to_string_lossy().into_owned();
        let mut fire: Option<FaultKind> = None;
        for (rule, seen) in &mut inner.rules {
            if rule.op != op {
                continue;
            }
            if let Some(sub) = &rule.path_contains {
                if !path_str.contains(sub.as_str()) {
                    continue;
                }
            }
            let n = *seen;
            *seen += 1;
            if fire.is_none() && (n == rule.after || (rule.sticky && n >= rule.after)) {
                fire = Some(rule.kind);
            }
        }
        if let Some(kind) = fire {
            inner
                .log
                .push(format!("{op:?} #{op_index} on {path_str}: {kind:?}"));
        }
        fire
    }
}

/// A [`StorageFs`] that wraps another one (normally [`RealFs`]) and
/// executes a [`FaultPlan`]'s schedule against every operation.
pub struct FaultFs {
    inner: Arc<dyn StorageFs>,
    plan: Arc<FaultPlan>,
}

impl FaultFs {
    /// Wrap the real filesystem under `plan`'s schedule.
    pub fn new(plan: Arc<FaultPlan>) -> Arc<FaultFs> {
        FaultFs::wrapping(real_fs(), plan)
    }

    /// Wrap an arbitrary inner filesystem under `plan`'s schedule.
    pub fn wrapping(inner: Arc<dyn StorageFs>, plan: Arc<FaultPlan>) -> Arc<FaultFs> {
        Arc::new(FaultFs { inner, plan })
    }

    /// The shared schedule handle.
    pub fn plan(&self) -> Arc<FaultPlan> {
        Arc::clone(&self.plan)
    }
}

struct FaultFile {
    inner: Box<dyn VfsFile>,
    path: PathBuf,
    plan: Arc<FaultPlan>,
}

impl VfsFile for FaultFile {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read_at(offset, buf)
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> io::Result<()> {
        match self.plan.check(FaultOp::Write, &self.path) {
            None => self.inner.write_at(offset, data),
            Some(FaultKind::ShortWrite) => {
                // Land a torn prefix, then fail — what a crashed or
                // ENOSPC-interrupted write(2) leaves behind.
                let half = data.len() / 2;
                if half > 0 {
                    self.inner.write_at(offset, &data[..half])?;
                }
                Err(FaultKind::ShortWrite.to_error())
            }
            Some(kind) => Err(kind.to_error()),
        }
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        match self.plan.check(FaultOp::SetLen, &self.path) {
            None => self.inner.set_len(len),
            Some(kind) => Err(kind.to_error()),
        }
    }

    fn len(&self) -> io::Result<u64> {
        self.inner.len()
    }

    fn sync_data(&mut self) -> io::Result<()> {
        match self.plan.check(FaultOp::Sync, &self.path) {
            // A failed fsync still leaves an unknown subset of the data on
            // disk — the inner sync is intentionally *not* run, so nothing
            // new is guaranteed durable, matching the kernel contract that
            // dirty pages may be dropped after an fsync error.
            None => self.inner.sync_data(),
            Some(kind) => Err(kind.to_error()),
        }
    }

    fn try_clone(&self) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(FaultFile {
            inner: self.inner.try_clone()?,
            path: self.path.clone(),
            plan: Arc::clone(&self.plan),
        }))
    }
}

impl StorageFs for FaultFs {
    fn open(&self, path: &Path, mode: OpenMode) -> io::Result<Box<dyn VfsFile>> {
        if let Some(kind) = self.plan.check(FaultOp::OpenFile, path) {
            return Err(kind.to_error());
        }
        Ok(Box::new(FaultFile {
            inner: self.inner.open(path, mode)?,
            path: path.to_path_buf(),
            plan: Arc::clone(&self.plan),
        }))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        if let Some(kind) = self.plan.check(FaultOp::Rename, from) {
            return Err(kind.to_error());
        }
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        if let Some(kind) = self.plan.check(FaultOp::Remove, path) {
            return Err(kind.to_error());
        }
        self.inner.remove_file(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.inner.sync_dir(path)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dataspread-vfs-{name}-{}", std::process::id()))
    }

    #[test]
    fn real_fs_positional_roundtrip() {
        let path = temp("real");
        std::fs::remove_file(&path).ok();
        let fs = real_fs();
        let mut f = fs.open(&path, OpenMode::Open).unwrap();
        f.write_at(0, b"hello world").unwrap();
        f.write_at(6, b"there").unwrap();
        let mut buf = [0u8; 11];
        assert_eq!(f.read_at(0, &mut buf).unwrap(), 11);
        assert_eq!(&buf, b"hello there");
        assert_eq!(f.len().unwrap(), 11);
        f.set_len(5).unwrap();
        assert_eq!(f.read_to_end_vec().unwrap(), b"hello");
        f.sync_data().unwrap();
        let mut dup = f.try_clone().unwrap();
        assert_eq!(dup.read_to_end_vec().unwrap(), b"hello");
        assert!(fs.exists(&path));
        assert_eq!(fs.read(&path).unwrap(), b"hello");
        fs.remove_file(&path).unwrap();
        assert!(!fs.exists(&path));
    }

    #[test]
    fn nth_write_fails_on_schedule() {
        let path = temp("nth");
        std::fs::remove_file(&path).ok();
        let plan = FaultPlan::new();
        plan.push(FaultRule::new(FaultOp::Write, 2, FaultKind::Io));
        let fs = FaultFs::new(Arc::clone(&plan));
        let mut f = fs.open(&path, OpenMode::Open).unwrap();
        f.write_at(0, b"a").unwrap();
        f.write_at(1, b"b").unwrap();
        let err = f.write_at(2, b"c").unwrap_err();
        assert!(err.to_string().contains("injected"));
        // One-shot: the next write succeeds.
        f.write_at(2, b"c").unwrap();
        assert_eq!(plan.injected(), 1);
        assert_eq!(plan.op_count(FaultOp::Write), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_write_tears_the_payload() {
        let path = temp("short");
        std::fs::remove_file(&path).ok();
        let plan = FaultPlan::new();
        plan.push(FaultRule::new(FaultOp::Write, 0, FaultKind::ShortWrite));
        let fs = FaultFs::new(Arc::clone(&plan));
        let mut f = fs.open(&path, OpenMode::Open).unwrap();
        assert!(f.write_at(0, b"0123456789").is_err());
        assert_eq!(f.read_to_end_vec().unwrap(), b"01234", "half landed");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sticky_enospc_keeps_failing_and_disarm_heals() {
        let path = temp("enospc");
        std::fs::remove_file(&path).ok();
        let plan = FaultPlan::new();
        plan.push(FaultRule::new(FaultOp::Write, 1, FaultKind::Enospc).sticky());
        let fs = FaultFs::new(Arc::clone(&plan));
        let mut f = fs.open(&path, OpenMode::Open).unwrap();
        f.write_at(0, b"ok").unwrap();
        assert!(f.write_at(2, b"no").is_err());
        assert!(f.write_at(2, b"no").is_err());
        assert!(f.write_at(2, b"no").is_err());
        plan.disarm();
        f.write_at(2, b"ok").unwrap();
        assert!(plan.log().iter().all(|l| l.contains("Enospc")));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn path_filter_scopes_the_rule() {
        let a = temp("filter-a.wal");
        let b = temp("filter-b.img");
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
        let plan = FaultPlan::new();
        plan.push(FaultRule::new(FaultOp::Sync, 0, FaultKind::Io).on_path(".wal"));
        let fs = FaultFs::new(Arc::clone(&plan));
        let mut fa = fs.open(&a, OpenMode::Open).unwrap();
        let mut fb = fs.open(&b, OpenMode::Open).unwrap();
        fb.sync_data().unwrap();
        assert!(fa.sync_data().is_err());
        std::fs::remove_file(&a).ok();
        std::fs::remove_file(&b).ok();
    }

    #[test]
    fn open_and_rename_faults_fire() {
        let path = temp("openfail");
        std::fs::remove_file(&path).ok();
        let plan = FaultPlan::new();
        plan.push(FaultRule::new(FaultOp::OpenFile, 0, FaultKind::Io));
        plan.push(FaultRule::new(FaultOp::Rename, 0, FaultKind::Io));
        let fs = FaultFs::new(Arc::clone(&plan));
        assert!(fs.open(&path, OpenMode::Open).is_err());
        let mut f = fs.open(&path, OpenMode::Open).unwrap();
        f.write_at(0, b"x").unwrap();
        drop(f);
        let dst = temp("openfail-dst");
        assert!(fs.rename(&path, &dst).is_err());
        fs.rename(&path, &dst).unwrap();
        std::fs::remove_file(&dst).ok();
    }

    #[test]
    fn schedule_is_deterministic_across_runs() {
        let run = || -> Vec<String> {
            let path = temp("det");
            std::fs::remove_file(&path).ok();
            let plan = FaultPlan::new();
            plan.push(FaultRule::new(FaultOp::Write, 3, FaultKind::ShortWrite));
            plan.push(FaultRule::new(FaultOp::Sync, 1, FaultKind::Io));
            let fs = FaultFs::new(Arc::clone(&plan));
            let mut f = fs.open(&path, OpenMode::Open).unwrap();
            for i in 0..6u64 {
                let _ = f.write_at(i, &[i as u8]);
                let _ = f.sync_data();
            }
            std::fs::remove_file(&path).ok();
            plan.log()
        };
        assert_eq!(run(), run());
    }
}
