//! Write-ahead log.
//!
//! Durability for the paged store: every committed mutation is appended to
//! the log *before* it reaches the page file, so a crash at any point loses
//! at most the uncommitted tail. The log is a flat file of CRC-framed
//! records:
//!
//! ```text
//! magic "DSWL" | version u32
//! per record: len u32 | crc32 u32 | payload (len bytes)
//! ```
//!
//! A record is *committed* exactly when it is fully present with a valid
//! checksum. [`Wal::open`] scans the file, keeps the longest valid prefix,
//! and truncates any torn tail — that is the whole recovery contract, and
//! it is what the engine's byte-boundary crash tests exercise: cutting the
//! file anywhere yields either the state before or after each record.
//!
//! Payload semantics are the caller's business; this layer only frames and
//! checksums. The engine logs logical sheet ops plus checkpoint undo-page
//! images (see `dataspread-engine`'s `durable` module).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::StoreError;

const MAGIC: &[u8; 4] = b"DSWL";
const VERSION: u32 = 1;
/// Size of the file header preceding the first record.
pub const WAL_HEADER_LEN: u64 = 8;
/// Per-record framing overhead (length + checksum).
pub const WAL_RECORD_OVERHEAD: u64 = 8;
/// Upper bound on a single record payload (sanity check while scanning).
const MAX_RECORD: u32 = 64 << 20;

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// CRC-32 (IEEE 802.3, the zlib polynomial) — used for WAL record framing
/// and page-image payload validation.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// An append-only, checksummed log file.
pub struct Wal {
    file: File,
    path: PathBuf,
    /// Length of the valid prefix == offset of the next append.
    len: u64,
    /// Records recovered by [`Wal::open`] (the committed prefix found on
    /// disk), in append order. Consumed by the owner during recovery.
    recovered: Vec<Vec<u8>>,
    appended: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("len", &self.len)
            .field("recovered", &self.recovered.len())
            .finish()
    }
}

impl Wal {
    /// Open (or create) the log at `path`, recovering the committed record
    /// prefix and truncating any torn tail.
    ///
    /// A file shorter than its header is treated as empty (a crash before
    /// the header finished); a full-size header with the wrong magic or
    /// version is an error — that is not a torn write, it is the wrong
    /// file.
    pub fn open(path: impl AsRef<Path>) -> Result<Wal, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        if bytes.len() < WAL_HEADER_LEN as usize {
            // Fresh (or torn-at-birth) log: write a clean header.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.sync_data()?;
            return Ok(Wal {
                file,
                path,
                len: WAL_HEADER_LEN,
                recovered: Vec::new(),
                appended: 0,
            });
        }
        if &bytes[..4] != MAGIC {
            return Err(StoreError::Corrupt("wal: bad magic".into()));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(StoreError::Corrupt(format!(
                "wal: unsupported version {version}"
            )));
        }

        // Scan the committed prefix.
        let mut recovered = Vec::new();
        let mut off = WAL_HEADER_LEN as usize;
        while let Some(frame) = bytes.get(off..off + WAL_RECORD_OVERHEAD as usize) {
            let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
            if len > MAX_RECORD {
                break; // implausible length: torn or garbage tail
            }
            let start = off + WAL_RECORD_OVERHEAD as usize;
            let Some(payload) = bytes.get(start..start + len as usize) else {
                break; // payload torn
            };
            if crc32(payload) != crc {
                break; // payload corrupt
            }
            recovered.push(payload.to_vec());
            off = start + len as usize;
        }

        // Drop the torn tail so new appends start at the valid prefix end.
        file.set_len(off as u64)?;
        file.seek(SeekFrom::Start(off as u64))?;
        Ok(Wal {
            file,
            path,
            len: off as u64,
            recovered,
            appended: 0,
        })
    }

    /// The committed records found on disk by [`Wal::open`], oldest first.
    /// Recovery consumes them once; appends do not show up here.
    pub fn take_recovered(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.recovered)
    }

    /// Append one record. The bytes reach the OS immediately (a crashed
    /// *process* loses nothing) but survive a crashed *machine* only after
    /// the next [`Wal::sync`] — the fsync-point is the commit point.
    /// Returns the record's start offset (its LSN).
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let lsn = self.len;
        let mut frame = Vec::with_capacity(payload.len() + WAL_RECORD_OVERHEAD as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        // Seek explicitly: a previously *failed* append may have left both
        // the OS cursor and garbage bytes past the valid prefix.
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        self.appended += 1;
        Ok(lsn)
    }

    /// Drop any bytes past the valid prefix (garbage left by a failed
    /// append). A no-op on a healthy log.
    pub fn truncate_to_valid(&mut self) -> Result<(), StoreError> {
        self.file.set_len(self.len)?;
        self.file.seek(SeekFrom::Start(self.len))?;
        Ok(())
    }

    /// The fsync-point: force all appended records to stable storage.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Drop every record (the post-checkpoint reset): the log shrinks back
    /// to its header and the result is fsynced.
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        self.file.set_len(WAL_HEADER_LEN)?;
        self.file.seek(SeekFrom::Start(WAL_HEADER_LEN))?;
        self.file.sync_data()?;
        self.len = WAL_HEADER_LEN;
        self.recovered.clear();
        Ok(())
    }

    /// Bytes in the valid prefix (header included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == WAL_HEADER_LEN && self.recovered.is_empty()
    }

    /// Records appended through this handle (not counting recovered ones).
    pub fn appended_records(&self) -> u64 {
        self.appended
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dataspread-wal-{name}-{}", std::process::id()))
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_reopen_roundtrip() {
        let path = temp("roundtrip");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            assert!(wal.is_empty());
            wal.append(b"one").unwrap();
            wal.append(b"two-two").unwrap();
            wal.append(b"").unwrap();
            wal.sync().unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(
            wal.take_recovered(),
            vec![b"one".to_vec(), b"two-two".to_vec(), Vec::new()]
        );
        // A second take yields nothing; the log is re-appendable.
        assert!(wal.take_recovered().is_empty());
        wal.append(b"three").unwrap();
        drop(wal);
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.take_recovered().len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_discarded_at_every_cut() {
        let path = temp("torn");
        std::fs::remove_file(&path).ok();
        let payloads: Vec<Vec<u8>> = vec![vec![1; 5], vec![2; 9], vec![3; 1], vec![4; 30]];
        {
            let mut wal = Wal::open(&path).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
            }
            wal.sync().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        // Committed record count for a prefix of length l.
        let expected_at = |l: usize| {
            let mut off = WAL_HEADER_LEN as usize;
            let mut n = 0;
            for p in &payloads {
                off += WAL_RECORD_OVERHEAD as usize + p.len();
                if off <= l {
                    n += 1;
                }
            }
            n
        };
        let cut_path = temp("torn-cut");
        for l in 0..=bytes.len() {
            std::fs::write(&cut_path, &bytes[..l]).unwrap();
            let mut wal = Wal::open(&cut_path).unwrap();
            let got = wal.take_recovered();
            assert_eq!(got.len(), expected_at(l), "cut at byte {l}");
            for (g, p) in got.iter().zip(&payloads) {
                assert_eq!(g, p, "cut at byte {l}");
            }
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&cut_path).ok();
    }

    #[test]
    fn corrupt_payload_ends_prefix() {
        let path = temp("corrupt");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"good").unwrap();
            wal.append(b"flipped").unwrap();
            wal.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.take_recovered(), vec![b"good".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_resets_and_survives_reopen() {
        let path = temp("truncate");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"ephemeral").unwrap();
            wal.truncate().unwrap();
            assert!(wal.is_empty());
            wal.append(b"kept").unwrap();
            wal.sync().unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.take_recovered(), vec![b"kept".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_rejected() {
        let path = temp("magic");
        std::fs::write(&path, b"NOTAWALFILE!").unwrap();
        assert!(matches!(Wal::open(&path), Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }
}
