//! Write-ahead log with segment rotation.
//!
//! Durability for the paged store: every committed mutation is appended to
//! the log *before* it reaches the page file, so a crash at any point loses
//! at most the uncommitted tail. The log is a chain of segment files —
//! `wal.log`, `wal.log.1`, `wal.log.2`, … — each a flat file of CRC-framed
//! records:
//!
//! ```text
//! magic "DSWL" | version u32 | epoch u64 | segment index u64
//! per record: len u32 | crc32 u32 | payload (len bytes)
//! ```
//!
//! A record is *committed* exactly when it is fully present with a valid
//! checksum. [`Wal::open`] scans the segment chain in order, keeps the
//! longest valid record prefix, and truncates any torn tail — that is the
//! whole recovery contract, and it is what the engine's byte-boundary
//! crash tests exercise: cutting the log anywhere yields either the state
//! before or after each record.
//!
//! **Rotation.** With a segment limit configured
//! ([`Wal::set_segment_limit`]), an append that finds the current segment
//! past the threshold seals it (fsync) and starts the next numbered file,
//! so a long-running session never grows one unbounded file.
//! [`Wal::truncate`] — the post-checkpoint reset — collapses the chain
//! back to a single empty base segment. The `epoch` header field makes
//! that reset crash-safe: truncate bumps the epoch in the base header
//! *before* deleting the numbered segments, so a crash between the two
//! leaves stale segments that the next open rejects (epoch mismatch)
//! instead of replaying records from before the checkpoint.
//!
//! Version-1 logs (8-byte header, single segment) are still readable; the
//! first truncate rewrites them as version 2.
//!
//! Payload semantics are the caller's business; this layer only frames and
//! checksums. The engine logs logical sheet ops plus checkpoint undo-page
//! images (see `dataspread-engine`'s `durable` module).

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use dataspread_obs::{now_ms, Counter, Event, Histogram, MetricsRegistry};

use crate::error::StoreError;
use crate::vfs::{real_fs, OpenMode, StorageFs, VfsFile};

const MAGIC: &[u8; 4] = b"DSWL";
const VERSION: u32 = 2;
/// Size of the version-2 file header preceding the first record.
pub const WAL_HEADER_LEN: u64 = 24;
/// Size of the legacy version-1 header (magic + version only).
pub const WAL_V1_HEADER_LEN: u64 = 8;
/// Per-record framing overhead (length + checksum).
pub const WAL_RECORD_OVERHEAD: u64 = 8;
/// Upper bound on a single record payload. Enforced on append — a larger
/// record would be indistinguishable from a torn tail to the recovery
/// scan, so it must never be committed in the first place.
pub const MAX_RECORD: u32 = 64 << 20;

const fn make_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                0xEDB8_8320 ^ (crc >> 1)
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = make_crc_table();

/// CRC-32 (IEEE 802.3, the zlib polynomial) — used for WAL record framing
/// and page-image payload validation.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Path of segment `idx` of the log based at `base` (`idx` 0 = `base`).
pub fn segment_path(base: &Path, idx: u64) -> PathBuf {
    if idx == 0 {
        base.to_path_buf()
    } else {
        let mut name = base.file_name().unwrap_or_default().to_os_string();
        name.push(format!(".{idx}"));
        base.with_file_name(name)
    }
}

fn header_bytes(epoch: u64, seg_index: u64) -> [u8; WAL_HEADER_LEN as usize] {
    let mut h = [0u8; WAL_HEADER_LEN as usize];
    h[..4].copy_from_slice(MAGIC);
    h[4..8].copy_from_slice(&VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&epoch.to_le_bytes());
    h[16..24].copy_from_slice(&seg_index.to_le_bytes());
    h
}

/// Scan CRC-framed records from `start`, appending committed payloads to
/// `out`. Returns `(valid_end, clean)` where `clean` means the whole byte
/// range was committed records (no torn tail).
fn scan_records(bytes: &[u8], start: usize, out: &mut Vec<Vec<u8>>) -> (usize, bool) {
    let mut off = start;
    while let Some(frame) = bytes.get(off..off + WAL_RECORD_OVERHEAD as usize) {
        let len = u32::from_le_bytes(frame[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(frame[4..8].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_RECORD {
            // Implausible length: torn or garbage tail. len == 0 is how a
            // zero-extended crash tail reads (its frame would even pass
            // the CRC check, since crc32(&[]) == 0) — appends reject empty
            // payloads so a real record can never look like this.
            break;
        }
        let payload_start = off + WAL_RECORD_OVERHEAD as usize;
        let Some(payload) = bytes.get(payload_start..payload_start + len as usize) else {
            break; // payload torn
        };
        if crc32(payload) != crc {
            break; // payload corrupt
        }
        out.push(payload.to_vec());
        off = payload_start + len as usize;
    }
    (off, off == bytes.len())
}

/// Best-effort fsync of the directory holding `path` so freshly created
/// segment files survive a machine crash.
fn sync_parent_dir(fs: &dyn StorageFs, path: &Path) {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        fs.sync_dir(parent).ok();
    }
}

/// Delete numbered segments `from..` (contiguous; stops at the first gap).
fn delete_segments_from(fs: &dyn StorageFs, base: &Path, from: u64) {
    let mut idx = from.max(1);
    while fs.remove_file(&segment_path(base, idx)).is_ok() {
        idx += 1;
    }
}

/// An append-only, checksummed, segmented log.
pub struct Wal {
    fs: Arc<dyn StorageFs>,
    base: PathBuf,
    /// Handle of the current (last) segment.
    file: Box<dyn VfsFile>,
    epoch: u64,
    seg_index: u64,
    /// Header length of the current segment (8 for a legacy v1 base).
    seg_header_len: u64,
    /// Valid bytes in the current segment (header included).
    seg_len: u64,
    /// Valid bytes across all sealed (earlier) segments.
    sealed_len: u64,
    /// Live segment files (1 = just the base).
    segments: u64,
    /// Rotate to a new segment once the current one exceeds this size.
    segment_limit: Option<u64>,
    /// Records recovered by [`Wal::open`] (the committed prefix found on
    /// disk), in append order. Consumed by the owner during recovery.
    recovered: Vec<Vec<u8>>,
    appended: u64,
    has_records: bool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("base", &self.base)
            .field("segments", &self.segments)
            .field("len", &self.len_bytes())
            .field("recovered", &self.recovered.len())
            .finish()
    }
}

impl Wal {
    /// Open (or create) the log based at `path`, recovering the committed
    /// record prefix across the segment chain and truncating any torn
    /// tail.
    ///
    /// A base file shorter than its header is treated as empty (a crash
    /// before the header finished); a full-size header with the wrong
    /// magic or version is an error — that is not a torn write, it is the
    /// wrong file. Numbered segments whose epoch does not match the base
    /// (stale leftovers of an interrupted [`Wal::truncate`]) are deleted,
    /// not replayed.
    pub fn open(path: impl AsRef<Path>) -> Result<Wal, StoreError> {
        Self::open_on(real_fs(), path)
    }

    /// [`Wal::open`] against an explicit [`StorageFs`] — the
    /// fault-injection entry point.
    pub fn open_on(fs: Arc<dyn StorageFs>, path: impl AsRef<Path>) -> Result<Wal, StoreError> {
        let base = path.as_ref().to_path_buf();
        let mut file = fs.open(&base, OpenMode::Open)?;
        let bytes = file.read_to_end_vec()?;

        // Decide what the base segment is: fresh, legacy v1, or v2.
        let parsed: Option<(u64, u64)> = if bytes.len() < WAL_V1_HEADER_LEN as usize {
            None // fresh (or torn-at-birth) log
        } else {
            if &bytes[..4] != MAGIC {
                return Err(StoreError::Corrupt("wal: bad magic".into()));
            }
            let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
            match version {
                1 => Some((0, WAL_V1_HEADER_LEN)),
                2 => {
                    if bytes.len() < WAL_HEADER_LEN as usize {
                        None // torn mid-header (e.g. during truncate)
                    } else {
                        let epoch = u64::from_le_bytes(bytes[8..16].try_into().expect("8"));
                        let idx = u64::from_le_bytes(bytes[16..24].try_into().expect("8"));
                        if idx != 0 {
                            return Err(StoreError::Corrupt(
                                "wal: base file carries a non-zero segment index".into(),
                            ));
                        }
                        Some((epoch, WAL_HEADER_LEN))
                    }
                }
                v => return Err(StoreError::Corrupt(format!("wal: unsupported version {v}"))),
            }
        };

        let Some((epoch, header_len)) = parsed else {
            // Fresh base. Pick an epoch above any stale numbered segment so
            // leftovers of an interrupted truncate can never be replayed.
            let mut stale_max: Option<u64> = None;
            let mut idx = 1u64;
            while let Ok(seg) = fs.read(&segment_path(&base, idx)) {
                if seg.len() >= WAL_HEADER_LEN as usize && &seg[..4] == MAGIC {
                    let e = u64::from_le_bytes(seg[8..16].try_into().expect("8"));
                    stale_max = Some(stale_max.map_or(e, |m: u64| m.max(e)));
                }
                idx += 1;
            }
            delete_segments_from(fs.as_ref(), &base, 1);
            let epoch = stale_max.map_or(0, |e| e + 1);
            file.set_len(0)?;
            file.write_at(0, &header_bytes(epoch, 0))?;
            file.sync_data()?;
            return Ok(Wal {
                fs,
                base,
                file,
                epoch,
                seg_index: 0,
                seg_header_len: WAL_HEADER_LEN,
                seg_len: WAL_HEADER_LEN,
                sealed_len: 0,
                segments: 1,
                segment_limit: None,
                recovered: Vec::new(),
                appended: 0,
                has_records: false,
            });
        };

        // Scan the base, then walk the numbered chain while it is intact.
        let mut recovered = Vec::new();
        let (valid, clean) = scan_records(&bytes, header_len as usize, &mut recovered);
        let mut last_idx = 0u64;
        let mut last_header = header_len;
        let mut last_valid = valid as u64;
        let mut sealed_len = 0u64;
        let mut torn = !clean;
        let mut idx = 1u64;
        while !torn {
            let p = segment_path(&base, idx);
            let Ok(seg_bytes) = fs.read(&p) else {
                break;
            };
            let ok_header = seg_bytes.len() >= WAL_HEADER_LEN as usize
                && &seg_bytes[..4] == MAGIC
                && u32::from_le_bytes(seg_bytes[4..8].try_into().expect("4")) == VERSION
                && u64::from_le_bytes(seg_bytes[8..16].try_into().expect("8")) == epoch
                && u64::from_le_bytes(seg_bytes[16..24].try_into().expect("8")) == idx;
            if !ok_header {
                break; // stale or torn-at-birth continuation: drop it below
            }
            let (valid, clean) = scan_records(&seg_bytes, WAL_HEADER_LEN as usize, &mut recovered);
            sealed_len += last_valid;
            last_idx = idx;
            last_header = WAL_HEADER_LEN;
            last_valid = valid as u64;
            torn = !clean;
            idx += 1;
        }
        // Everything past the accepted chain (stale epochs, segments after
        // a torn tail) is not a committed suffix — drop it.
        delete_segments_from(fs.as_ref(), &base, last_idx + 1);

        // Position the write handle at the valid end of the last segment.
        let mut file = if last_idx == 0 {
            file
        } else {
            fs.open(&segment_path(&base, last_idx), OpenMode::Existing)?
        };
        file.set_len(last_valid)?;
        let has_records = !recovered.is_empty();
        Ok(Wal {
            fs,
            base,
            file,
            epoch,
            seg_index: last_idx,
            seg_header_len: last_header,
            seg_len: last_valid,
            sealed_len,
            segments: last_idx + 1,
            segment_limit: None,
            recovered,
            appended: 0,
            has_records,
        })
    }

    /// Rotate to a new segment once the current one exceeds `bytes`
    /// (`None`, the default, keeps a single segment forever).
    pub fn set_segment_limit(&mut self, bytes: Option<u64>) {
        self.segment_limit = bytes;
    }

    /// Live segment files in the chain.
    pub fn segment_count(&self) -> u64 {
        self.segments
    }

    /// The committed records found on disk by [`Wal::open`], oldest first.
    /// Recovery consumes them once; appends do not show up here.
    pub fn take_recovered(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.recovered)
    }

    /// Seal the current segment and start the next numbered one.
    fn rotate(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        let idx = self.seg_index + 1;
        let path = segment_path(&self.base, idx);
        let mut next = self.fs.open(&path, OpenMode::Truncate)?;
        next.write_at(0, &header_bytes(self.epoch, idx))?;
        next.sync_data()?;
        sync_parent_dir(self.fs.as_ref(), &path);
        self.sealed_len += self.seg_len;
        self.file = next;
        self.seg_index = idx;
        self.seg_header_len = WAL_HEADER_LEN;
        self.seg_len = WAL_HEADER_LEN;
        self.segments += 1;
        Ok(())
    }

    /// Append one record. The bytes reach the OS immediately (a crashed
    /// *process* loses nothing) but survive a crashed *machine* only after
    /// the next [`Wal::sync`] — the fsync-point is the commit point.
    /// Returns the record's logical start offset (its LSN).
    ///
    /// Payloads must be non-empty and at most [`MAX_RECORD`] bytes — both
    /// bounds exist so a committed record can never look like a torn or
    /// zero-extended tail to the recovery scan. A rejected append writes
    /// nothing (the log stays whole).
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        if payload.is_empty() {
            return Err(StoreError::LimitExceeded(
                "wal: empty record payloads are not representable".into(),
            ));
        }
        if payload.len() > MAX_RECORD as usize {
            return Err(StoreError::LimitExceeded(format!(
                "wal: record of {} bytes exceeds the {MAX_RECORD}-byte limit",
                payload.len()
            )));
        }
        if let Some(limit) = self.segment_limit {
            // Only rotate past a record boundary (never an empty segment).
            if self.seg_len >= limit && self.seg_len > self.seg_header_len {
                self.rotate()?;
            }
        }
        let lsn = self.sealed_len + self.seg_len;
        let mut frame = Vec::with_capacity(payload.len() + WAL_RECORD_OVERHEAD as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        // Write at the valid end explicitly: a previously *failed* append
        // may have left garbage bytes past the valid prefix, which this
        // positional write overwrites.
        self.file.write_at(self.seg_len, &frame)?;
        self.seg_len += frame.len() as u64;
        self.appended += 1;
        self.has_records = true;
        Ok(lsn)
    }

    /// Drop any bytes past the valid prefix (garbage left by a failed
    /// append). A no-op on a healthy log.
    pub fn truncate_to_valid(&mut self) -> Result<(), StoreError> {
        self.file.set_len(self.seg_len)?;
        Ok(())
    }

    /// The fsync-point: force all appended records to stable storage.
    /// (Earlier segments were sealed with an fsync at rotation time.)
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.file.sync_data()?;
        Ok(())
    }

    /// A duplicate handle of the *current* segment file, for fsyncing
    /// outside whatever lock guards appends. Safe under rotation: records
    /// appended before the handle was taken live either in this segment or
    /// in an earlier one already sealed with its own fsync, so
    /// `sync_data` on the handle makes every earlier append durable even
    /// if the log rotated meanwhile.
    pub fn sync_handle(&self) -> Result<Box<dyn VfsFile>, StoreError> {
        Ok(self.file.try_clone()?)
    }

    /// Drop every record (the post-checkpoint reset): the chain collapses
    /// to a single empty base segment under a new epoch, fully-checkpointed
    /// numbered segments are deleted, and the result is fsynced. The epoch
    /// bump lands before the deletes, so a crash in between leaves stale
    /// segments that the next open rejects instead of replaying.
    pub fn truncate(&mut self) -> Result<(), StoreError> {
        self.epoch += 1;
        if self.seg_index != 0 {
            self.file = self.fs.open(&self.base, OpenMode::Open)?;
        }
        self.file.set_len(0)?;
        self.file.write_at(0, &header_bytes(self.epoch, 0))?;
        self.file.sync_data()?;
        delete_segments_from(self.fs.as_ref(), &self.base, 1);
        self.seg_index = 0;
        self.seg_header_len = WAL_HEADER_LEN;
        self.seg_len = WAL_HEADER_LEN;
        self.sealed_len = 0;
        self.segments = 1;
        self.recovered.clear();
        self.has_records = false;
        Ok(())
    }

    /// Bytes in the valid prefix across all segments (headers included).
    pub fn len_bytes(&self) -> u64 {
        self.sealed_len + self.seg_len
    }

    /// True when the log holds no records.
    pub fn is_empty(&self) -> bool {
        !self.has_records
    }

    /// Records appended through this handle (not counting recovered ones).
    pub fn appended_records(&self) -> u64 {
        self.appended
    }

    /// Path of the base segment.
    pub fn path(&self) -> &Path {
        &self.base
    }

    /// Epoch of the current base segment. Bumped by every
    /// [`Wal::truncate`]; owners persist it next to external sequence
    /// state (e.g. a durable ticket base) to correlate that state with
    /// exactly one generation of the log across crashes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

// -------------------------------------------------------- observability --

/// Cached metric handles for one shared log, created once from a
/// [`MetricsRegistry`] and attached via [`SharedWal::set_obs`]. Recording
/// is a few relaxed atomics on the append path and one clock pair around
/// each fsync; when the registry is disabled the clock reads are skipped
/// too.
#[derive(Clone)]
pub struct WalObs {
    registry: Arc<MetricsRegistry>,
    sheet: String,
    /// `wal_fsyncs{sheet}` — fsyncs issued (group or serial).
    pub fsyncs: Arc<Counter>,
    /// `wal_fsync_ns{sheet}` — fsync latency histogram.
    pub fsync_ns: Arc<Histogram>,
    /// `wal_commit_batch_ops{sheet}` — records covered per fsync.
    pub batch_ops: Arc<Histogram>,
    /// `wal_appends{sheet}` — records appended.
    pub appends: Arc<Counter>,
    /// `wal_append_bytes{sheet}` — payload bytes appended.
    pub append_bytes: Arc<Counter>,
    /// `wal_rotations{sheet}` — segment rotations.
    pub rotations: Arc<Counter>,
}

impl WalObs {
    /// Create (or re-acquire) the WAL metric handles for `sheet`.
    pub fn new(registry: &Arc<MetricsRegistry>, sheet: &str) -> WalObs {
        let labels: &[(&str, &str)] = &[("sheet", sheet)];
        WalObs {
            registry: Arc::clone(registry),
            sheet: sheet.to_string(),
            fsyncs: registry.counter("wal_fsyncs", labels),
            fsync_ns: registry.histogram("wal_fsync_ns", labels),
            batch_ops: registry.histogram("wal_commit_batch_ops", labels),
            appends: registry.counter("wal_appends", labels),
            append_bytes: registry.counter("wal_append_bytes", labels),
            rotations: registry.counter("wal_rotations", labels),
        }
    }

    fn enabled(&self) -> bool {
        self.registry.enabled()
    }

    fn note_rotation(&self, segments: u64) {
        self.rotations.inc();
        self.registry.push_event(Event {
            ts_ms: now_ms(),
            kind: "wal_rotate".to_string(),
            sheet: self.sheet.clone(),
            op: format!("segment {segments}"),
            duration_ns: 0,
            ticket: 0,
            outcome: "ok".to_string(),
        });
    }
}

impl std::fmt::Debug for WalObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalObs")
            .field("sheet", &self.sheet)
            .finish()
    }
}

// ---------------------------------------------------------- group commit --

/// A [`Wal`] shared between threads, with group commit.
///
/// Concurrent writers `append` under a short internal lock and receive a
/// **commit ticket** — a monotone per-log sequence number. A record is
/// *committed* once a [`SharedWal::sync`] covering its ticket completes;
/// [`SharedWal::wait_durable`] blocks a writer until then. The intended
/// topology (the workspace service) is K writer threads appending and one
/// dedicated committer calling `sync` in a loop: each fsync covers every
/// record appended since the last one, turning K writers × 1 fsync/op
/// into ~1 fsync per batch without weakening the commit contract (no
/// writer is acknowledged before its record is on stable storage).
///
/// The fsync itself runs on a duplicate file handle *outside* the append
/// lock ([`Wal::sync_handle`]), so writers keep appending while a batch
/// is being flushed; a second internal lock serializes flushers.
///
/// [`SharedWal::truncate`] (the post-checkpoint reset) marks every
/// outstanding ticket durable — the checkpoint that triggered it has
/// already captured those ops in the image, which is strictly stronger
/// than WAL durability.
pub struct SharedWal {
    state: std::sync::Mutex<SharedState>,
    /// Serializes group fsyncs (flushers never hold `state` across the
    /// fsync itself).
    flush: std::sync::Mutex<()>,
    durable: std::sync::Condvar,
}

struct SharedState {
    wal: Wal,
    /// Ticket of the most recent append (0 = nothing appended).
    appended_seq: u64,
    /// Highest ticket known durable.
    durable_seq: u64,
    /// **Permanent** record of a failed fsync (or failed truncate). Once
    /// set it is never cleared: after a failed fsync the kernel may have
    /// dropped the dirty pages, so a later fsync that "succeeds" proves
    /// nothing about the records covered by the failed one — retrying and
    /// acknowledging on it is the classic fsyncgate data-loss bug. The
    /// poisoned log refuses appends, syncs, and truncates; every waiter is
    /// failed with a coded [`StoreError::StorageFailed`]. Recovery is a
    /// process restart re-opening the log and replaying what actually
    /// reached the disk.
    sync_failed: Option<String>,
    /// When the poisoning failure was first recorded (ms since epoch),
    /// surfaced to operators alongside the cause.
    failed_at_ms: Option<u64>,
    /// Fsyncs issued through the group fsync-point.
    fsyncs: u64,
    /// Metric handles, when the owner attached a registry.
    obs: Option<WalObs>,
}

impl SharedState {
    fn poison(&mut self, cause: String) {
        self.sync_failed = Some(cause);
        if self.failed_at_ms.is_none() {
            self.failed_at_ms = Some(now_ms());
        }
    }
}

impl std::fmt::Debug for SharedWal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("SharedWal")
            .field("wal", &st.wal)
            .field("appended_seq", &st.appended_seq)
            .field("durable_seq", &st.durable_seq)
            .finish()
    }
}

impl SharedWal {
    /// Wrap an opened [`Wal`] for shared use.
    pub fn new(wal: Wal) -> SharedWal {
        SharedWal {
            state: std::sync::Mutex::new(SharedState {
                wal,
                appended_seq: 0,
                durable_seq: 0,
                sync_failed: None,
                failed_at_ms: None,
                fsyncs: 0,
                obs: None,
            }),
            flush: std::sync::Mutex::new(()),
            durable: std::sync::Condvar::new(),
        }
    }

    /// Open (or create) the log at `path` — [`Wal::open`] + [`SharedWal::new`].
    pub fn open(path: impl AsRef<Path>) -> Result<SharedWal, StoreError> {
        Ok(SharedWal::new(Wal::open(path)?))
    }

    /// [`SharedWal::open`] against an explicit [`StorageFs`].
    pub fn open_on(
        fs: Arc<dyn StorageFs>,
        path: impl AsRef<Path>,
    ) -> Result<SharedWal, StoreError> {
        Ok(SharedWal::new(Wal::open_on(fs, path)?))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SharedState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The permanent-failure cause, when a fsync or truncate has failed.
    /// A poisoned log acknowledges nothing and accepts nothing; the owner
    /// should flip into degraded (read-only) service.
    pub fn poisoned(&self) -> Option<String> {
        self.lock().sync_failed.clone()
    }

    /// The permanent-failure cause plus when it was first recorded (ms
    /// since the Unix epoch) — the operator-facing degrade record.
    pub fn poisoned_info(&self) -> Option<(String, u64)> {
        let st = self.lock();
        st.sync_failed
            .clone()
            .map(|cause| (cause, st.failed_at_ms.unwrap_or(0)))
    }

    /// Attach metric handles; every later append/fsync/rotation records
    /// through them. Idempotent (last attach wins).
    pub fn set_obs(&self, obs: WalObs) {
        self.lock().obs = Some(obs);
    }

    /// Run `f` against the underlying log under the append lock. Exposed
    /// for owners that need the full [`Wal`] surface (recovery, stats,
    /// and deliberately-serial per-op fsyncs). `f` must not wait on other
    /// log users (deadlock); note that long-running `f` (e.g.
    /// `Wal::sync`) holds appends, pending checks, and ticket bookkeeping
    /// back for its duration — that is exactly the legacy fully-serial
    /// commit behaviour, which the workspace's per-op mode reproduces as
    /// the group-commit baseline.
    pub fn with<R>(&self, f: impl FnOnce(&mut Wal) -> R) -> R {
        f(&mut self.lock().wal)
    }

    /// Append one record, returning its commit ticket. The record is in
    /// the OS (crash of the *process* loses nothing) but survives a
    /// machine crash only once a later [`SharedWal::sync`] covers the
    /// ticket.
    pub fn append(&self, payload: &[u8]) -> Result<u64, StoreError> {
        let mut st = self.lock();
        if let Some(cause) = &st.sync_failed {
            return Err(StoreError::StorageFailed(cause.clone()));
        }
        let segments_before = st.wal.segment_count();
        st.wal.append(payload)?;
        st.appended_seq += 1;
        if let Some(obs) = &st.obs {
            if obs.enabled() {
                obs.appends.inc();
                obs.append_bytes.add(payload.len() as u64);
                let segments = st.wal.segment_count();
                if segments > segments_before {
                    obs.note_rotation(segments);
                }
            }
        }
        Ok(st.appended_seq)
    }

    /// Ticket of the most recent append (0 when nothing was appended).
    pub fn appended_seq(&self) -> u64 {
        self.lock().appended_seq
    }

    /// Seed the ticket sequence at `base` instead of 0. For owners that
    /// persist the ticket horizon across restarts (see
    /// [`Wal::epoch`]): called once right after open, **before any
    /// append**, it makes tickets issued by this incarnation continue the
    /// pre-restart sequence instead of restarting from 1. Everything at
    /// or below `base` counts as durable. Refused (no-op) after the first
    /// append — reseeding a live sequence would corrupt outstanding
    /// tickets.
    pub fn set_ticket_base(&self, base: u64) {
        let mut st = self.lock();
        if st.appended_seq == 0 && st.durable_seq == 0 {
            st.appended_seq = base;
            st.durable_seq = base;
        }
    }

    /// Highest ticket known durable (0 when nothing was ever flushed).
    /// `appended_seq() - durable_seq()` is the committer's current lag —
    /// the admission-control signal the server's backpressure uses.
    pub fn durable_seq(&self) -> u64 {
        self.lock().durable_seq
    }

    /// True when appended records are awaiting a group fsync.
    pub fn has_pending(&self) -> bool {
        let st = self.lock();
        st.durable_seq < st.appended_seq
    }

    /// The group fsync-point: make every record appended so far durable
    /// and wake the writers waiting on their tickets. Returns the ticket
    /// horizon made durable.
    pub fn sync(&self) -> Result<u64, StoreError> {
        let flusher = self.flush.lock().unwrap_or_else(|e| e.into_inner());
        self.sync_locked(flusher)
    }

    /// Fully-serial fsync under the append lock (the per-op commit mode's
    /// path). Shares the poisoning contract with the group fsync-point: a
    /// failure is permanent and fails every later commit with
    /// [`StoreError::StorageFailed`].
    pub fn sync_serial(&self) -> Result<(), StoreError> {
        let mut st = self.lock();
        if let Some(cause) = &st.sync_failed {
            return Err(StoreError::StorageFailed(cause.clone()));
        }
        let timed = st
            .obs
            .as_ref()
            .filter(|o| o.enabled())
            .map(|_| Instant::now());
        let batch = st.appended_seq - st.durable_seq;
        match st.wal.sync() {
            Ok(()) => {
                st.durable_seq = st.appended_seq;
                if let (Some(obs), Some(t0)) = (&st.obs, timed) {
                    // The metric counts every fsync; the separate
                    // `fsyncs` field below still meters only the group
                    // fsync-point, matching its historical meaning.
                    obs.fsyncs.inc();
                    obs.fsync_ns.record_ns(t0.elapsed().as_nanos() as u64);
                    obs.batch_ops.record(batch);
                }
                self.durable.notify_all();
                Ok(())
            }
            Err(e) => {
                let cause = e.to_string();
                st.poison(cause.clone());
                self.durable.notify_all();
                Err(StoreError::StorageFailed(cause))
            }
        }
    }

    /// The flush body, entered holding the flusher lock.
    fn sync_locked(&self, _flusher: std::sync::MutexGuard<'_, ()>) -> Result<u64, StoreError> {
        let (mut handle, target, batch) = {
            let st = self.lock();
            if let Some(cause) = &st.sync_failed {
                // Never retry past a failed fsync: the data the failure
                // covered may already be gone from the page cache, so a
                // "successful" retry would acknowledge lost records.
                return Err(StoreError::StorageFailed(cause.clone()));
            }
            if st.durable_seq >= st.appended_seq {
                return Ok(st.durable_seq); // nothing to flush
            }
            (
                st.wal.sync_handle()?,
                st.appended_seq,
                st.appended_seq - st.durable_seq,
            )
        };
        // fsync outside the append lock: writers build the next batch
        // while this one hits the disk.
        let t0 = Instant::now();
        let result = handle.sync_data();
        let fsync_ns = t0.elapsed().as_nanos() as u64;
        let mut st = self.lock();
        match result {
            Ok(()) => {
                st.durable_seq = st.durable_seq.max(target);
                st.fsyncs += 1;
                if let Some(obs) = st.obs.as_ref().filter(|o| o.enabled()) {
                    obs.fsyncs.inc();
                    obs.fsync_ns.record_ns(fsync_ns);
                    obs.batch_ops.record(batch);
                }
                self.durable.notify_all();
                Ok(st.durable_seq)
            }
            Err(e) => {
                // Permanent: poison the log and fail every waiting ticket.
                let cause = e.to_string();
                st.poison(cause.clone());
                self.durable.notify_all();
                Err(StoreError::StorageFailed(cause))
            }
        }
    }

    /// Fsyncs actually issued against this log (by any flusher — the
    /// committer thread or a helping writer).
    pub fn fsync_count(&self) -> u64 {
        self.lock().fsyncs
    }

    /// Block until `ticket` is durable, *helping with the flush* instead
    /// of parking when the fsync-point is free.
    ///
    /// [`SharedWal::wait_durable`] parks on a condvar immediately, which
    /// makes small commit windows futex-bound: with one edit in flight per
    /// writer, every commit pays park + committer wakeup + notify — two
    /// context switches bracketing a ~100µs fsync. This variant first
    /// spins `spin` yields (sized by the caller to the core count; the
    /// batch often goes durable while spinning), then — if no flusher is
    /// active — runs the group fsync on the *calling* thread. The helping
    /// fsync covers every record appended before it, so batching is
    /// preserved: concurrent writers pile onto the one flusher's horizon
    /// and the rest fall through to the condvar, which the helper
    /// notifies. The dedicated committer remains the steady-state flusher;
    /// helping only fills the latency gap when it is parked or busy
    /// elsewhere.
    pub fn commit_wait(&self, ticket: u64, spin: u32) -> Result<(), StoreError> {
        for _ in 0..spin {
            {
                let st = self.lock();
                if st.durable_seq >= ticket {
                    return Ok(());
                }
                if st.sync_failed.is_some() {
                    break; // wait_durable surfaces the error
                }
            }
            std::thread::yield_now();
        }
        let flusher = match self.flush.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        };
        if let Some(flusher) = flusher {
            if let Ok(durable) = self.sync_locked(flusher) {
                if durable >= ticket {
                    return Ok(());
                }
            }
        }
        self.wait_durable(ticket)
    }

    /// Block until `ticket` is durable (acknowledged commit). Errors if a
    /// group fsync failed before the ticket was covered.
    pub fn wait_durable(&self, ticket: u64) -> Result<(), StoreError> {
        let mut st = self.lock();
        loop {
            if st.durable_seq >= ticket {
                return Ok(());
            }
            if let Some(cause) = &st.sync_failed {
                return Err(StoreError::StorageFailed(format!(
                    "group commit failed before ticket {ticket}: {cause}"
                )));
            }
            st = self.durable.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Post-checkpoint reset (see [`Wal::truncate`]). Outstanding tickets
    /// become durable by definition: the checkpoint that truncates the log
    /// has already folded their effects into the image. Refused on a
    /// poisoned log (the checkpoint's own fsyncs cannot be trusted after a
    /// failed one), and a truncate that itself fails poisons the log — its
    /// fsync is a commit point like any other.
    pub fn truncate(&self) -> Result<(), StoreError> {
        let mut st = self.lock();
        if let Some(cause) = &st.sync_failed {
            return Err(StoreError::StorageFailed(cause.clone()));
        }
        if let Err(e) = st.wal.truncate() {
            st.poison(e.to_string());
            self.durable.notify_all();
            return Err(StoreError::StorageFailed(e.to_string()));
        }
        st.durable_seq = st.appended_seq;
        self.durable.notify_all();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dataspread-wal-{name}-{}", std::process::id()))
    }

    fn cleanup(path: &Path) {
        std::fs::remove_file(path).ok();
        delete_segments_from(real_fs().as_ref(), path, 1);
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_reopen_roundtrip() {
        let path = temp("roundtrip");
        cleanup(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            assert!(wal.is_empty());
            wal.append(b"one").unwrap();
            wal.append(b"two-two").unwrap();
            wal.sync().unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(
            wal.take_recovered(),
            vec![b"one".to_vec(), b"two-two".to_vec()]
        );
        // A second take yields nothing; the log is re-appendable.
        assert!(wal.take_recovered().is_empty());
        wal.append(b"three").unwrap();
        drop(wal);
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.take_recovered().len(), 3);
        cleanup(&path);
    }

    #[test]
    fn append_rejects_unrepresentable_payloads() {
        let path = temp("bounds");
        cleanup(&path);
        let mut wal = Wal::open(&path).unwrap();
        // Empty and oversized payloads would read back as a torn tail, so
        // they must be refused up front — without writing anything.
        assert!(matches!(wal.append(b""), Err(StoreError::LimitExceeded(_))));
        let huge = vec![7u8; MAX_RECORD as usize + 1];
        assert!(matches!(
            wal.append(&huge),
            Err(StoreError::LimitExceeded(_))
        ));
        // The log is still whole and appendable.
        wal.append(b"fine").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.take_recovered(), vec![b"fine".to_vec()]);
        cleanup(&path);
    }

    #[test]
    fn zero_extended_tail_is_discarded_not_parsed() {
        // A crash can persist a file-size extension without the data
        // (delayed allocation): the tail reads as zeros, whose 8-byte
        // frames would even pass the CRC check as empty records. Recovery
        // must treat that as a torn tail, keeping the committed prefix.
        let path = temp("zero-tail");
        cleanup(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"alpha").unwrap();
            wal.append(b"beta").unwrap();
            wal.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0u8; 256]);
        std::fs::write(&path, &bytes).unwrap();
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(
            wal.take_recovered(),
            vec![b"alpha".to_vec(), b"beta".to_vec()]
        );
        // The zero tail was physically truncated; appends continue cleanly.
        wal.append(b"gamma").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.take_recovered().len(), 3);
        cleanup(&path);
    }

    #[test]
    fn torn_tail_discarded_at_every_cut() {
        let path = temp("torn");
        cleanup(&path);
        let payloads: Vec<Vec<u8>> = vec![vec![1; 5], vec![2; 9], vec![3; 1], vec![4; 30]];
        {
            let mut wal = Wal::open(&path).unwrap();
            for p in &payloads {
                wal.append(p).unwrap();
            }
            wal.sync().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        // Committed record count for a prefix of length l.
        let expected_at = |l: usize| {
            let mut off = WAL_HEADER_LEN as usize;
            let mut n = 0;
            for p in &payloads {
                off += WAL_RECORD_OVERHEAD as usize + p.len();
                if off <= l {
                    n += 1;
                }
            }
            n
        };
        let cut_path = temp("torn-cut");
        for l in 0..=bytes.len() {
            std::fs::write(&cut_path, &bytes[..l]).unwrap();
            let mut wal = Wal::open(&cut_path).unwrap();
            let got = wal.take_recovered();
            assert_eq!(got.len(), expected_at(l), "cut at byte {l}");
            for (g, p) in got.iter().zip(&payloads) {
                assert_eq!(g, p, "cut at byte {l}");
            }
        }
        cleanup(&path);
        cleanup(&cut_path);
    }

    #[test]
    fn corrupt_payload_ends_prefix() {
        let path = temp("corrupt");
        cleanup(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"good").unwrap();
            wal.append(b"flipped").unwrap();
            wal.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.take_recovered(), vec![b"good".to_vec()]);
        cleanup(&path);
    }

    #[test]
    fn truncate_resets_and_survives_reopen() {
        let path = temp("truncate");
        cleanup(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(b"ephemeral").unwrap();
            wal.truncate().unwrap();
            assert!(wal.is_empty());
            wal.append(b"kept").unwrap();
            wal.sync().unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.take_recovered(), vec![b"kept".to_vec()]);
        cleanup(&path);
    }

    #[test]
    fn wrong_magic_rejected() {
        let path = temp("magic");
        std::fs::write(&path, b"NOTAWALFILE!").unwrap();
        assert!(matches!(Wal::open(&path), Err(StoreError::Corrupt(_))));
        cleanup(&path);
    }

    #[test]
    fn legacy_v1_header_still_opens() {
        let path = temp("v1");
        cleanup(&path);
        // A PR 2-era log: 8-byte header, then one framed record.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        let payload = b"legacy-record";
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
        std::fs::write(&path, &bytes).unwrap();
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.take_recovered(), vec![payload.to_vec()]);
        // Appends keep working; the first truncate upgrades the header.
        wal.append(b"more").unwrap();
        wal.truncate().unwrap();
        drop(wal);
        let header = std::fs::read(&path).unwrap();
        assert_eq!(header.len() as u64, WAL_HEADER_LEN);
        cleanup(&path);
    }

    #[test]
    fn rotation_spreads_records_over_segments_and_recovers() {
        let path = temp("rotate");
        cleanup(&path);
        let n = 40usize;
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.set_segment_limit(Some(128));
            for i in 0..n {
                wal.append(format!("record-{i:04}").as_bytes()).unwrap();
            }
            wal.sync().unwrap();
            assert!(wal.segment_count() > 1, "limit must force rotation");
        }
        assert!(segment_path(&path, 1).exists());
        let mut wal = Wal::open(&path).unwrap();
        let got = wal.take_recovered();
        assert_eq!(got.len(), n, "all records across all segments");
        for (i, rec) in got.iter().enumerate() {
            assert_eq!(rec, format!("record-{i:04}").as_bytes());
        }
        // The post-checkpoint reset collapses the chain.
        wal.truncate().unwrap();
        assert_eq!(wal.segment_count(), 1);
        assert!(!segment_path(&path, 1).exists());
        cleanup(&path);
    }

    #[test]
    fn stale_segments_from_interrupted_truncate_are_not_replayed() {
        let path = temp("stale");
        cleanup(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.set_segment_limit(Some(64));
            for i in 0..20 {
                wal.append(format!("old-{i}").as_bytes()).unwrap();
            }
            wal.sync().unwrap();
            assert!(wal.segment_count() > 1);
        }
        // Simulate a truncate that crashed after resetting the base but
        // before deleting the numbered segments: reset the base by hand.
        let seg1 = std::fs::read(segment_path(&path, 1)).unwrap();
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.truncate().unwrap();
            wal.append(b"new-era").unwrap();
            wal.sync().unwrap();
        }
        // Resurrect a stale segment from the pre-truncate epoch.
        std::fs::write(segment_path(&path, 1), &seg1).unwrap();
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(
            wal.take_recovered(),
            vec![b"new-era".to_vec()],
            "stale-epoch segment must not be replayed"
        );
        assert!(
            !segment_path(&path, 1).exists(),
            "stale segment deleted on open"
        );
        cleanup(&path);
    }

    #[test]
    fn shared_wal_tickets_and_group_sync() {
        let path = temp("shared-basic");
        cleanup(&path);
        let wal = SharedWal::open(&path).unwrap();
        let t1 = wal.append(b"one").unwrap();
        let t2 = wal.append(b"two").unwrap();
        assert!(t2 > t1);
        assert!(wal.has_pending());
        let horizon = wal.sync().unwrap();
        assert!(horizon >= t2);
        assert!(!wal.has_pending());
        // Covered tickets return immediately.
        wal.wait_durable(t1).unwrap();
        wal.wait_durable(t2).unwrap();
        // Truncate marks outstanding tickets durable (checkpoint absorbed
        // them) and the log restarts clean.
        let t3 = wal.append(b"three").unwrap();
        wal.truncate().unwrap();
        wal.wait_durable(t3).unwrap();
        assert!(wal.with(|w| w.is_empty()));
        cleanup(&path);
    }

    #[test]
    fn shared_wal_concurrent_writers_one_committer() {
        let path = temp("shared-threads");
        cleanup(&path);
        let wal = std::sync::Arc::new(SharedWal::open(&path).unwrap());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        // Committer: group-fsync whenever something is pending.
        let committer = {
            let wal = std::sync::Arc::clone(&wal);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    if wal.has_pending() {
                        wal.sync().unwrap();
                    } else {
                        std::thread::yield_now();
                    }
                }
                wal.sync().unwrap();
            })
        };
        let writers: Vec<_> = (0..4u8)
            .map(|w| {
                let wal = std::sync::Arc::clone(&wal);
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        let ticket = wal.append(format!("w{w}-{i}").as_bytes()).unwrap();
                        wal.wait_durable(ticket).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
        committer.join().unwrap();
        drop(wal);
        // Every acknowledged record is on disk.
        let mut reopened = Wal::open(&path).unwrap();
        let recovered = reopened.take_recovered();
        assert_eq!(recovered.len(), 200);
        cleanup(&path);
    }

    #[test]
    fn failed_fsync_poisons_the_shared_wal_permanently() {
        use crate::vfs::{FaultFs, FaultKind, FaultOp, FaultPlan, FaultRule};
        let path = temp("poison");
        cleanup(&path);
        let plan = FaultPlan::new();
        let fs = FaultFs::new(std::sync::Arc::clone(&plan));
        let wal = SharedWal::open_on(fs, &path).unwrap();
        let t1 = wal.append(b"pre-fault").unwrap();
        wal.sync().unwrap();
        wal.wait_durable(t1).unwrap();

        // Arm: the next fsync fails. The ticket appended under it must be
        // failed with the coded permanent error — and *stay* failed even
        // though the disk is healthy again afterwards (fsyncgate).
        plan.push(FaultRule::new(FaultOp::Sync, 0, FaultKind::Io));
        let t2 = wal.append(b"doomed").unwrap();
        assert!(matches!(wal.sync(), Err(StoreError::StorageFailed(_))));
        plan.disarm(); // disk "recovers" — must make no difference
        assert!(matches!(
            wal.wait_durable(t2),
            Err(StoreError::StorageFailed(_))
        ));
        assert!(matches!(
            wal.commit_wait(t2, 64),
            Err(StoreError::StorageFailed(_))
        ));
        assert!(matches!(wal.sync(), Err(StoreError::StorageFailed(_))));
        assert!(matches!(
            wal.append(b"refused"),
            Err(StoreError::StorageFailed(_))
        ));
        assert!(matches!(wal.truncate(), Err(StoreError::StorageFailed(_))));
        assert!(wal.poisoned().is_some());

        // Reopening the log is the only recovery: the pre-fault record is
        // there; "doomed" may or may not be (it was never acknowledged).
        drop(wal);
        let mut reopened = Wal::open(&path).unwrap();
        let recovered = reopened.take_recovered();
        assert!(!recovered.is_empty());
        assert_eq!(recovered[0], b"pre-fault".to_vec());
        cleanup(&path);
    }

    #[test]
    fn serial_sync_shares_the_poisoning_contract() {
        use crate::vfs::{FaultFs, FaultKind, FaultOp, FaultPlan, FaultRule};
        let path = temp("poison-serial");
        cleanup(&path);
        let plan = FaultPlan::new();
        let fs = FaultFs::new(std::sync::Arc::clone(&plan));
        let wal = SharedWal::open_on(fs, &path).unwrap();
        wal.append(b"a").unwrap();
        wal.sync_serial().unwrap();
        plan.push(FaultRule::new(FaultOp::Sync, 0, FaultKind::Enospc));
        wal.append(b"b").unwrap();
        assert!(matches!(
            wal.sync_serial(),
            Err(StoreError::StorageFailed(_))
        ));
        plan.disarm();
        assert!(matches!(
            wal.sync_serial(),
            Err(StoreError::StorageFailed(_))
        ));
        assert!(wal.poisoned().unwrap().contains("No space left"));
        cleanup(&path);
    }

    #[test]
    fn short_write_on_append_leaves_recoverable_prefix() {
        use crate::vfs::{FaultFs, FaultKind, FaultOp, FaultPlan, FaultRule};
        let path = temp("shortwrite");
        cleanup(&path);
        let plan = FaultPlan::new();
        let fs = FaultFs::new(std::sync::Arc::clone(&plan));
        {
            let mut wal = Wal::open_on(fs, &path).unwrap();
            wal.append(b"committed-record").unwrap();
            wal.sync().unwrap();
            plan.push(FaultRule::new(FaultOp::Write, 0, FaultKind::ShortWrite));
            assert!(wal.append(b"torn-record-payload").is_err());
            // The failed append left garbage past the valid prefix; a
            // subsequent append overwrites it positionally.
            wal.append(b"after-the-tear").unwrap();
            wal.sync().unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(
            wal.take_recovered(),
            vec![b"committed-record".to_vec(), b"after-the-tear".to_vec()]
        );
        cleanup(&path);
    }

    #[test]
    fn torn_tail_mid_chain_drops_later_segments() {
        let path = temp("torn-chain");
        cleanup(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.set_segment_limit(Some(64));
            for i in 0..20 {
                wal.append(format!("rec-{i:02}").as_bytes()).unwrap();
            }
            wal.sync().unwrap();
            assert!(wal.segment_count() > 2);
        }
        // Corrupt the last byte of segment 1: its tail becomes torn, so
        // recovery must stop there and discard segment 2 onwards.
        let p1 = segment_path(&path, 1);
        let mut b1 = std::fs::read(&p1).unwrap();
        let last = b1.len() - 1;
        b1[last] ^= 0xFF;
        std::fs::write(&p1, &b1).unwrap();
        let mut wal = Wal::open(&path).unwrap();
        let got = wal.take_recovered();
        assert!(!got.is_empty() && got.len() < 20);
        for (i, rec) in got.iter().enumerate() {
            assert_eq!(rec, format!("rec-{i:02}").as_bytes(), "prefix only");
        }
        assert!(!segment_path(&path, 2).exists());
        cleanup(&path);
    }
}
