//! Property tests: B+-tree vs `BTreeMap`, heap file vs `HashMap` oracle.

use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

use proptest::prelude::*;

use dataspread_relstore::{BPlusTree, HeapFile};

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Range(u16, u16),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        any::<u16>().prop_map(TreeOp::Remove),
        any::<u16>().prop_map(TreeOp::Get),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bplustree_matches_btreemap(ops in prop::collection::vec(tree_op(), 1..500)) {
        let mut tree = BPlusTree::new();
        let mut oracle: BTreeMap<u16, u32> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), oracle.insert(k, v));
                }
                TreeOp::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), oracle.remove(&k));
                }
                TreeOp::Get(k) => {
                    prop_assert_eq!(tree.get(&k), oracle.get(&k));
                }
                TreeOp::Range(lo, hi) => {
                    let got: Vec<(u16, u32)> = tree
                        .range(Bound::Included(&lo), Bound::Included(&hi))
                        .into_iter()
                        .map(|(k, v)| (*k, *v))
                        .collect();
                    let want: Vec<(u16, u32)> =
                        oracle.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), oracle.len());
        }
    }

    #[test]
    fn heap_file_matches_hashmap(
        inserts in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..600), 1..80),
        deletes in prop::collection::vec(any::<prop::sample::Index>(), 0..40),
        updates in prop::collection::vec((any::<prop::sample::Index>(), prop::collection::vec(any::<u8>(), 1..900)), 0..40),
    ) {
        let mut heap = HeapFile::new();
        let mut oracle: HashMap<_, Vec<u8>> = HashMap::new();
        let mut tids = Vec::new();
        for bytes in &inserts {
            let tid = heap.insert(bytes).unwrap();
            oracle.insert(tid, bytes.clone());
            tids.push(tid);
        }
        for idx in deletes {
            let tid = *idx.get(&tids);
            let was_live = oracle.remove(&tid).is_some();
            prop_assert_eq!(heap.delete(tid), was_live);
        }
        for (idx, bytes) in updates {
            let tid = *idx.get(&tids);
            if oracle.contains_key(&tid) {
                let new_tid = heap.update(tid, &bytes).unwrap();
                oracle.remove(&tid);
                oracle.insert(new_tid, bytes.clone());
                if new_tid != tid {
                    tids.push(new_tid);
                }
            } else {
                prop_assert!(heap.update(tid, &bytes).is_err());
            }
        }
        prop_assert_eq!(heap.live_count() as usize, oracle.len());
        for (tid, bytes) in &oracle {
            prop_assert_eq!(heap.get(*tid), Some(bytes.as_slice()));
        }
        let scanned: HashMap<_, Vec<u8>> =
            heap.scan().map(|(t, b)| (t, b.to_vec())).collect();
        prop_assert_eq!(scanned, oracle);
    }
}
