//! The DataSpread network server: a [`Workspace`] behind a
//! length-prefixed binary TCP protocol.
//!
//! One accept loop hands each connection to its own reader thread plus a
//! small worker pool. The reader decodes frames into `(req_id,
//! Request)` pairs and queues them; workers execute against a shared
//! [`Session`] and write responses — tagged with the echoed request id —
//! under a shared writer lock, so responses may return out of order and
//! many logical sessions multiplex over one connection.
//!
//! Two properties the protocol work hinges on:
//!
//! * **Group-commit pipelining.** `StageEdit` returns its receipt without
//!   waiting for the fsync; `AwaitCommit` parks the worker on the commit
//!   ticket. A client keeping a window of staged edits in flight lets the
//!   group committer fold the whole window into ~1 fsync.
//! * **Admission control.** Each connection may hold at most
//!   [`ServerConfig::max_staged_per_conn`] staged-but-unacknowledged
//!   edits per sheet; the window is pruned against the sheet's durable
//!   horizon ([`Session::durable_ticket`]), and a client that overruns it
//!   gets a clean [`codes::BUSY`] rejection instead of unbounded
//!   server-side buffering.
//!
//! Malformed input never panics the server: undecodable frames and
//! unframeable streams are answered (best-effort) with a
//! [`codes::PROTOCOL`] error and the connection is closed.

use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use dataspread_obs::{now_ms, Counter, Event, Gauge, MetricsRegistry};
use dataspread_proto::{
    codes, read_frame, write_frame, CheckpointSummary, Request, Response, WireError,
    PROTOCOL_VERSION,
};
use dataspread_workspace::{Session, Workspace, WorkspaceError};

/// Per-connection serving knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads per connection (concurrent requests in flight for
    /// one connection; more lets reads overlap commit waits).
    pub workers_per_conn: usize,
    /// Max staged-but-not-yet-durable edits per sheet per connection
    /// before `StageEdit` answers [`codes::BUSY`].
    pub max_staged_per_conn: usize,
    /// Decoded requests buffered between the reader and the workers; a
    /// full queue stops the reader, pushing backpressure into TCP.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers_per_conn: 4,
            max_staged_per_conn: 64,
            queue_depth: 128,
        }
    }
}

/// Server-side instrumentation, shared across every connection. All
/// handles point into the workspace's own [`MetricsRegistry`], so the
/// server's counters ride the same snapshot [`Request::Metrics`] serves
/// and the same text exposition [`metrics_exposition`] renders.
struct ServerObs {
    registry: Arc<MetricsRegistry>,
    /// Frame bytes received (length prefix included).
    bytes_in: Arc<Counter>,
    /// Frame bytes written (length prefix included).
    bytes_out: Arc<Counter>,
    /// Established connections currently being served.
    in_flight: Arc<Gauge>,
}

impl ServerObs {
    fn new(registry: Arc<MetricsRegistry>) -> Arc<ServerObs> {
        Arc::new(ServerObs {
            bytes_in: registry.counter("server_frame_bytes_in", &[]),
            bytes_out: registry.counter("server_frame_bytes_out", &[]),
            in_flight: registry.gauge("server_connections_in_flight", &[]),
            registry,
        })
    }

    /// Count one decoded request by kind (`server_requests{kind=...}`).
    fn note_request(&self, kind: &'static str) {
        if self.registry.enabled() {
            self.registry
                .counter("server_requests", &[("kind", kind)])
                .inc();
        }
    }

    /// Count one error response by wire code (`server_errors{code=...}`).
    fn note_error(&self, code: u16) {
        if self.registry.enabled() {
            self.registry
                .counter("server_errors", &[("code", &code.to_string())])
                .inc();
        }
    }

    /// Ring-buffer a connection lifecycle event (`conn_open` /
    /// `conn_close`), with the peer address as the outcome.
    fn conn_event(&self, kind: &str, peer: &str) {
        self.registry.push_event(Event {
            ts_ms: now_ms(),
            kind: kind.to_string(),
            op: "conn".to_string(),
            outcome: peer.to_string(),
            ..Event::default()
        });
    }

    /// Ring-buffer an admission-control rejection.
    fn busy_reject(&self, sheet: &str) {
        self.registry.push_event(Event {
            ts_ms: now_ms(),
            kind: "busy_reject".to_string(),
            sheet: sheet.to_string(),
            op: "stage_edit".to_string(),
            outcome: "busy".to_string(),
            ..Event::default()
        });
    }
}

/// The metric label for one request variant.
fn request_kind(req: &Request) -> &'static str {
    match req {
        Request::Hello { .. } => "hello",
        Request::Ping => "ping",
        Request::OpenSheet { .. } => "open_sheet",
        Request::FetchWindow { .. } => "fetch_window",
        Request::Value { .. } => "value",
        Request::ApplyEdit { .. } => "apply_edit",
        Request::StageEdit { .. } => "stage_edit",
        Request::AwaitCommit { .. } => "await_commit",
        Request::ImportRows { .. } => "import_rows",
        Request::Checkpoint { .. } => "checkpoint",
        Request::Stats { .. } => "stats",
        Request::DurableTicket { .. } => "durable_ticket",
        Request::Metrics => "metrics",
    }
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (use `127.0.0.1:0` in tests and read the real
    /// port back from here).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, join the accept loop, and sever every established
    /// connection (their clients observe EOF / reset — the same thing a
    /// crashed server shows them).
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for conn in self
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Serve `workspace` on `addr` with default [`ServerConfig`].
pub fn serve(workspace: Workspace, addr: impl ToSocketAddrs) -> std::io::Result<ServerHandle> {
    serve_with(workspace, addr, ServerConfig::default())
}

/// Serve `workspace` on `addr`; returns once the listener is bound.
pub fn serve_with(
    workspace: Workspace,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns = Arc::new(Mutex::new(Vec::new()));
    let obs = ServerObs::new(workspace.metrics_registry());
    let accept = {
        let stop = Arc::clone(&stop);
        let conns = Arc::clone(&conns);
        std::thread::spawn(move || accept_loop(&listener, &workspace, &config, &stop, &conns, &obs))
    };
    Ok(ServerHandle {
        addr,
        stop,
        conns,
        accept: Some(accept),
    })
}

/// Render the Prometheus-style text exposition for `workspace`.
///
/// When `dir` names the workspace root on disk, every sheet directory
/// under it is opened first so recovered per-sheet state (WAL sizes,
/// pager stats, cache hit rates, health) is represented even if no
/// client has touched the sheet yet. This is the engine behind the
/// binary's `--metrics-dump` flag and is directly callable from tests
/// and operational tooling.
pub fn metrics_exposition(workspace: &Workspace, dir: Option<&std::path::Path>) -> String {
    let session = workspace.session();
    if let Some(dir) = dir {
        if let Ok(entries) = std::fs::read_dir(dir) {
            let mut names: Vec<String> = entries
                .filter_map(Result::ok)
                .filter(|e| e.path().is_dir())
                .filter_map(|e| e.file_name().into_string().ok())
                .collect();
            names.sort();
            for name in names {
                // A directory that is not a recoverable sheet is skipped;
                // the dump reports whatever does open.
                let _ = session.open_sheet(&name);
            }
        }
    }
    session.metrics().render_text()
}

fn accept_loop(
    listener: &TcpListener,
    workspace: &Workspace,
    config: &ServerConfig,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<TcpStream>>>,
    obs: &Arc<ServerObs>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        if let Ok(tracked) = stream.try_clone() {
            conns
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(tracked);
        }
        let session = workspace.session();
        let config = config.clone();
        let obs = Arc::clone(obs);
        std::thread::spawn(move || serve_conn(stream, session, &config, &obs));
    }
}

/// Staged-edit window for one connection: per sheet, the tickets handed
/// out by `StageEdit` that are not yet known durable. Held (briefly)
/// across the stage itself so the admission bound is exact.
#[derive(Default)]
struct StagedWindow {
    per_sheet: HashMap<String, VecDeque<u64>>,
}

impl StagedWindow {
    /// Drop tickets at or below the sheet's durable horizon.
    fn prune(&mut self, sheet: &str, durable: u64) {
        if let Some(q) = self.per_sheet.get_mut(sheet) {
            while q.front().is_some_and(|&t| t <= durable) {
                q.pop_front();
            }
        }
    }

    fn len(&self, sheet: &str) -> usize {
        self.per_sheet.get(sheet).map_or(0, VecDeque::len)
    }

    fn push(&mut self, sheet: &str, ticket: u64) {
        self.per_sheet
            .entry(sheet.to_string())
            .or_default()
            .push_back(ticket);
    }
}

fn protocol_err(detail: impl Into<String>) -> Response {
    Response::Err(WireError::new(codes::PROTOCOL, detail))
}

/// Serialize one response frame and write it under the shared writer
/// lock. Returns `false` once the peer is unreachable (writers then stop
/// trying).
fn send(writer: &Mutex<TcpStream>, obs: &ServerObs, req_id: u64, resp: &Response) -> bool {
    let payload = resp.encode(req_id);
    let mut frame = Vec::with_capacity(4 + payload.len());
    write_frame(&mut frame, &payload).expect("vec write is infallible");
    obs.bytes_out.add(frame.len() as u64);
    let mut w = writer.lock().unwrap_or_else(|e| e.into_inner());
    w.write_all(&frame).and_then(|()| w.flush()).is_ok()
}

fn serve_conn(stream: TcpStream, session: Session, config: &ServerConfig, obs: &Arc<ServerObs>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let peer = stream
        .peer_addr()
        .map_or_else(|_| "unknown".to_string(), |a| a.to_string());
    obs.in_flight.add(1);
    obs.conn_event("conn_open", &peer);
    let writer = Arc::new(Mutex::new(write_half));
    let staged = Arc::new(Mutex::new(StagedWindow::default()));
    let (tx, rx) = mpsc::sync_channel::<(u64, Request)>(config.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let mut workers = Vec::with_capacity(config.workers_per_conn);
    for _ in 0..config.workers_per_conn.max(1) {
        let rx = Arc::clone(&rx);
        let writer = Arc::clone(&writer);
        let staged = Arc::clone(&staged);
        let session = session.clone();
        let max_staged = config.max_staged_per_conn;
        let obs = Arc::clone(obs);
        workers.push(std::thread::spawn(move || loop {
            let next = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
            let Ok((req_id, req)) = next else { return };
            let resp = dispatch(&session, &staged, max_staged, &obs, req);
            if let Response::Err(e) = &resp {
                obs.note_error(e.code);
            }
            if !send(&writer, &obs, req_id, &resp) {
                return;
            }
        }));
    }

    read_loop(&stream, &writer, &tx, obs);

    // Reader done (EOF, protocol error, or I/O failure): close the queue
    // so workers drain what's left and exit, then shut the socket down.
    drop(tx);
    for w in workers {
        let _ = w.join();
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
    obs.in_flight.add(-1);
    obs.conn_event("conn_close", &peer);
}

/// Frame → request loop. Enforces the hello handshake (first request must
/// be a version-matching `Hello`) and answers malformed input with a
/// best-effort [`codes::PROTOCOL`] error before closing.
fn read_loop(
    stream: &TcpStream,
    writer: &Mutex<TcpStream>,
    tx: &mpsc::SyncSender<(u64, Request)>,
    obs: &ServerObs,
) {
    let mut reader = std::io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut greeted = false;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF
            Err(e) => {
                // Unframeable stream (bad length, truncation): the
                // connection cannot resync, so report and close.
                obs.note_error(codes::PROTOCOL);
                send(writer, obs, 0, &protocol_err(format!("bad frame: {e}")));
                return;
            }
        };
        obs.bytes_in.add(4 + payload.len() as u64);
        let (req_id, req) = match Request::decode(&payload) {
            Ok(pair) => pair,
            Err(e) => {
                // The request id is the first 8 bytes; echo it if the
                // frame got that far so the client can fail the right
                // call.
                let req_id = payload
                    .get(..8)
                    .map_or(0, |b| u64::from_le_bytes(b.try_into().expect("8 bytes")));
                obs.note_error(codes::PROTOCOL);
                send(
                    writer,
                    obs,
                    req_id,
                    &protocol_err(format!("bad request: {e}")),
                );
                return;
            }
        };
        obs.note_request(request_kind(&req));
        if !greeted {
            let Request::Hello { version } = req else {
                obs.note_error(codes::PROTOCOL);
                send(
                    writer,
                    obs,
                    req_id,
                    &protocol_err("first request must be Hello"),
                );
                return;
            };
            if version != PROTOCOL_VERSION {
                let detail = format!(
                    "protocol version mismatch: client {version}, server {PROTOCOL_VERSION}"
                );
                obs.note_error(codes::PROTOCOL);
                send(writer, obs, req_id, &protocol_err(detail));
                return;
            }
            greeted = true;
            if !send(
                writer,
                obs,
                req_id,
                &Response::Hello {
                    version: PROTOCOL_VERSION,
                },
            ) {
                return;
            }
            continue;
        }
        if tx.send((req_id, req)).is_err() {
            return; // workers gone (writer died)
        }
    }
}

/// Execute one request against the session. Never panics; every error
/// becomes a coded [`Response::Err`].
fn dispatch(
    session: &Session,
    staged: &Mutex<StagedWindow>,
    max_staged: usize,
    obs: &ServerObs,
    req: Request,
) -> Response {
    let result: Result<Response, WorkspaceError> = match req {
        // A repeated Hello after the handshake is harmless plumbing.
        Request::Hello { .. } => Ok(Response::Hello {
            version: PROTOCOL_VERSION,
        }),
        Request::Ping => Ok(Response::Pong),
        Request::OpenSheet { sheet } => session.open_sheet(&sheet).map(|()| Response::Ok),
        Request::FetchWindow { sheet, rect } => {
            session.fetch_window(&sheet, rect).map(Response::Window)
        }
        Request::Value { sheet, addr } => session.value(&sheet, addr).map(Response::Value),
        Request::ApplyEdit { sheet, edit } => {
            session.apply_edit(&sheet, edit).map(Response::Receipt)
        }
        Request::StageEdit { sheet, edit } => {
            let resp = stage_with_admission(session, staged, max_staged, &sheet, edit);
            if matches!(resp, Err(WorkspaceError::Busy(_))) {
                obs.busy_reject(&sheet);
            }
            resp
        }
        Request::AwaitCommit { sheet, ticket } => session.await_commit(&sheet, ticket).map(|()| {
            staged
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .prune(&sheet, ticket);
            Response::Ok
        }),
        Request::ImportRows {
            sheet,
            top_left,
            width,
            rows,
        } => session
            .import_rows(&sheet, top_left, width, rows)
            .map(Response::Imported),
        Request::Checkpoint { sheet } => session.checkpoint(&sheet).map(|report| {
            Response::Checkpoint(report.map(|r| CheckpointSummary {
                pages_written: r.pages_written,
                regions_total: r.regions_total,
                regions_dirty: r.regions_dirty,
                regions_written: r.regions_written,
            }))
        }),
        Request::Stats { sheet } => session.stats(&sheet).map(Response::Stats),
        Request::Metrics => Ok(Response::Metrics(session.metrics())),
        Request::DurableTicket { sheet } => {
            session
                .recovery_horizon(&sheet)
                .map(|(incarnation, horizon)| Response::Ticket {
                    incarnation,
                    horizon,
                })
        }
    };
    result.unwrap_or_else(|e| Response::Err(e.to_wire()))
}

/// `StageEdit` behind the per-connection window bound. The window lock is
/// held across the stage so the bound is exact; contention is per
/// connection only and the staged path never fsyncs inline (group mode
/// returns immediately).
fn stage_with_admission(
    session: &Session,
    staged: &Mutex<StagedWindow>,
    max_staged: usize,
    sheet: &str,
    edit: dataspread_proto::Edit,
) -> Result<Response, WorkspaceError> {
    let mut window = staged.lock().unwrap_or_else(|e| e.into_inner());
    window.prune(sheet, session.durable_ticket(sheet)?);
    if window.len(sheet) >= max_staged {
        return Err(WorkspaceError::Busy(format!(
            "{max_staged} staged edits in flight on sheet {sheet}; await_commit to drain"
        )));
    }
    let receipt = session.stage_edit(sheet, edit)?;
    if !receipt.durable {
        window.push(sheet, receipt.ticket);
    }
    Ok(Response::Receipt(receipt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataspread_grid::{CellAddr, CellValue, Rect};
    use dataspread_proto::Edit;

    /// Minimal raw-socket client for exercising the server without the
    /// client crate (which has its own suite and depends on this one).
    struct Raw {
        stream: TcpStream,
        next_id: u64,
    }

    impl Raw {
        fn connect(addr: SocketAddr) -> Raw {
            let stream = TcpStream::connect(addr).unwrap();
            let mut raw = Raw { stream, next_id: 1 };
            let resp = raw.call(&Request::Hello {
                version: PROTOCOL_VERSION,
            });
            assert_eq!(
                resp,
                Response::Hello {
                    version: PROTOCOL_VERSION
                }
            );
            raw
        }

        fn call(&mut self, req: &Request) -> Response {
            let id = self.next_id;
            self.next_id += 1;
            write_frame(&mut self.stream, &req.encode(id)).unwrap();
            self.stream.flush().unwrap();
            let payload = read_frame(&mut self.stream).unwrap().expect("response");
            let (got_id, resp) = Response::decode(&payload).unwrap();
            assert_eq!(got_id, id);
            resp
        }
    }

    fn serve_in_memory() -> ServerHandle {
        serve(Workspace::in_memory(), "127.0.0.1:0").unwrap()
    }

    #[test]
    fn end_to_end_over_tcp() {
        let handle = serve_in_memory();
        let mut c = Raw::connect(handle.local_addr());
        assert_eq!(c.call(&Request::Ping), Response::Pong);
        assert_eq!(
            c.call(&Request::OpenSheet { sheet: "s".into() }),
            Response::Ok
        );
        c.call(&Request::ApplyEdit {
            sheet: "s".into(),
            edit: Edit::Set {
                row: 0,
                col: 0,
                input: "21".into(),
            },
        });
        c.call(&Request::ApplyEdit {
            sheet: "s".into(),
            edit: Edit::Set {
                row: 0,
                col: 1,
                input: "=A1*2".into(),
            },
        });
        assert_eq!(
            c.call(&Request::Value {
                sheet: "s".into(),
                addr: CellAddr::new(0, 1),
            }),
            Response::Value(CellValue::Number(42.0))
        );
        let Response::Window(patch) = c.call(&Request::FetchWindow {
            sheet: "s".into(),
            rect: Rect::new(0, 0, 5, 5),
        }) else {
            panic!("expected window");
        };
        assert_eq!(patch.filled_count(), 2);
        handle.shutdown();
    }

    #[test]
    fn errors_cross_the_wire_with_codes() {
        let handle = serve_in_memory();
        let mut c = Raw::connect(handle.local_addr());
        let resp = c.call(&Request::FetchWindow {
            sheet: "missing".into(),
            rect: Rect::new(0, 0, 1, 1),
        });
        let Response::Err(e) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(e.code, codes::NO_SUCH_SHEET);
        assert_eq!(e.detail, "missing");
        // The connection survives a request-level error.
        assert_eq!(c.call(&Request::Ping), Response::Pong);
        handle.shutdown();
    }

    #[test]
    fn hello_is_mandatory_and_version_checked() {
        let handle = serve_in_memory();

        // No hello: first real request is rejected and the connection
        // closes.
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        write_frame(&mut s, &Request::Ping.encode(5)).unwrap();
        let payload = read_frame(&mut s).unwrap().unwrap();
        let (id, resp) = Response::decode(&payload).unwrap();
        assert_eq!(id, 5);
        let Response::Err(e) = resp else {
            panic!("expected protocol error");
        };
        assert_eq!(e.code, codes::PROTOCOL);
        assert!(read_frame(&mut s).unwrap().is_none(), "server closed");

        // Wrong version: rejected.
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        write_frame(&mut s, &Request::Hello { version: 999 }.encode(1)).unwrap();
        let payload = read_frame(&mut s).unwrap().unwrap();
        let (_, resp) = Response::decode(&payload).unwrap();
        let Response::Err(e) = resp else {
            panic!("expected protocol error");
        };
        assert_eq!(e.code, codes::PROTOCOL);
        handle.shutdown();
    }

    #[test]
    fn stage_admission_bounds_and_prunes_the_window() {
        let dir = std::env::temp_dir().join(format!("ds-server-adm-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let ws = Workspace::open(&dir).unwrap();
        let session = ws.session();
        session.open_sheet("s").unwrap();

        // Fill the window with tickets far beyond any durable horizon —
        // as if the committer had stalled with 4 staged edits in flight.
        let staged = Mutex::new(StagedWindow::default());
        for i in 0..4u64 {
            staged.lock().unwrap().push("s", u64::MAX - 4 + i);
        }
        let err = stage_with_admission(
            &session,
            &staged,
            4,
            "s",
            Edit::Set {
                row: 0,
                col: 0,
                input: "1".into(),
            },
        )
        .unwrap_err();
        assert!(matches!(err, WorkspaceError::Busy(_)), "got {err:?}");
        assert_eq!(err.to_wire().code, codes::BUSY);

        // Once the horizon passes the staged tickets, pruning reopens
        // the window and staging proceeds.
        staged.lock().unwrap().prune("s", u64::MAX);
        let resp = stage_with_admission(
            &session,
            &staged,
            4,
            "s",
            Edit::Set {
                row: 0,
                col: 0,
                input: "1".into(),
            },
        )
        .unwrap();
        assert!(matches!(resp, Response::Receipt(_)));
        // Other sheets have their own windows: a full window on "s"
        // never throttles "t".
        session.open_sheet("t").unwrap();
        for i in 0..4u64 {
            staged.lock().unwrap().push("s", u64::MAX - 4 + i);
        }
        stage_with_admission(
            &session,
            &staged,
            4,
            "t",
            Edit::Set {
                row: 0,
                col: 0,
                input: "2".into(),
            },
        )
        .unwrap();
        drop(ws);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn busy_rejection_crosses_the_wire_and_connection_survives() {
        // A zero-size window rejects every StageEdit deterministically —
        // the end-to-end proof of the Busy path over TCP.
        let handle = serve_with(
            Workspace::in_memory(),
            "127.0.0.1:0",
            ServerConfig {
                max_staged_per_conn: 0,
                ..Default::default()
            },
        )
        .unwrap();
        let mut c = Raw::connect(handle.local_addr());
        assert_eq!(
            c.call(&Request::OpenSheet { sheet: "s".into() }),
            Response::Ok
        );
        let resp = c.call(&Request::StageEdit {
            sheet: "s".into(),
            edit: Edit::Set {
                row: 0,
                col: 0,
                input: "1".into(),
            },
        });
        let Response::Err(e) = resp else {
            panic!("expected Busy, got {resp:?}");
        };
        assert_eq!(e.code, codes::BUSY);
        // Busy is a request-level rejection: the connection stays usable
        // and ApplyEdit (self-draining) still goes through.
        let resp = c.call(&Request::ApplyEdit {
            sheet: "s".into(),
            edit: Edit::Set {
                row: 0,
                col: 0,
                input: "7".into(),
            },
        });
        assert!(matches!(resp, Response::Receipt(_)), "got {resp:?}");
        handle.shutdown();
    }

    #[test]
    fn staged_pipeline_drains_with_await_commit() {
        let dir = std::env::temp_dir().join(format!("ds-server-bp-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let ws = Workspace::open(&dir).unwrap();
        let handle = serve_with(
            ws,
            "127.0.0.1:0",
            ServerConfig {
                max_staged_per_conn: 8,
                ..Default::default()
            },
        )
        .unwrap();
        let mut c = Raw::connect(handle.local_addr());
        assert_eq!(
            c.call(&Request::OpenSheet { sheet: "s".into() }),
            Response::Ok
        );
        // Stage a long run with periodic drains; every response must be
        // a receipt or a clean Busy (drain + retry), never anything else.
        let mut last_ticket = 0;
        let mut staged_ok = 0u32;
        for i in 0..64u32 {
            let edit = Edit::Set {
                row: i,
                col: 0,
                input: i.to_string(),
            };
            match c.call(&Request::StageEdit {
                sheet: "s".into(),
                edit: edit.clone(),
            }) {
                Response::Receipt(r) => {
                    last_ticket = last_ticket.max(r.ticket);
                    staged_ok += 1;
                }
                Response::Err(e) => {
                    assert_eq!(e.code, codes::BUSY);
                    assert_eq!(
                        c.call(&Request::AwaitCommit {
                            sheet: "s".into(),
                            ticket: last_ticket,
                        }),
                        Response::Ok
                    );
                    let retried = c.call(&Request::StageEdit {
                        sheet: "s".into(),
                        edit,
                    });
                    assert!(matches!(retried, Response::Receipt(_)), "got {retried:?}");
                    staged_ok += 1;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(staged_ok, 64);
        assert_eq!(
            c.call(&Request::AwaitCommit {
                sheet: "s".into(),
                ticket: last_ticket,
            }),
            Response::Ok
        );
        let Response::Stats(stats) = c.call(&Request::Stats { sheet: "s".into() }) else {
            panic!("expected stats");
        };
        assert_eq!(stats.filled_cells, 64);
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn many_sessions_multiplex_one_connection() {
        let handle = serve_in_memory();
        let mut c = Raw::connect(handle.local_addr());
        for sheet in ["a", "b", "c"] {
            assert_eq!(
                c.call(&Request::OpenSheet {
                    sheet: sheet.into()
                }),
                Response::Ok
            );
        }
        // Interleave requests across sheets on one socket; ids demux.
        for (i, sheet) in ["a", "b", "c", "a", "b", "c"].iter().enumerate() {
            c.call(&Request::ApplyEdit {
                sheet: (*sheet).to_string(),
                edit: Edit::Set {
                    row: i as u32,
                    col: 0,
                    input: i.to_string(),
                },
            });
        }
        for sheet in ["a", "b", "c"] {
            let Response::Stats(stats) = c.call(&Request::Stats {
                sheet: sheet.into(),
            }) else {
                panic!("expected stats");
            };
            assert_eq!(stats.filled_cells, 2, "sheet {sheet}");
        }
        handle.shutdown();
    }
}
