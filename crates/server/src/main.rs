//! `dataspread-server`: serve a workspace directory over TCP.
//!
//! ```text
//! dataspread-server --addr 127.0.0.1:7878 --dir /var/lib/dataspread
//! dataspread-server --dir /var/lib/dataspread --metrics-dump
//! ```
//!
//! `--addr` defaults to `127.0.0.1:7878`; port 0 picks a free port.
//! `--dir` selects the durable workspace root (created if absent);
//! without it the server runs an in-memory workspace. Prints
//! `listening on <addr>` once the socket is bound — supervisors and the
//! integration tests wait for that line before connecting.
//!
//! `--metrics-dump` opens the workspace, opens every sheet found under
//! `--dir`, prints the Prometheus-style text exposition of the metrics
//! registry to stdout, and exits without serving. (A live server exposes
//! the same snapshot over the wire via `Request::Metrics`.)

use dataspread_workspace::Workspace;

fn usage() -> ! {
    eprintln!("usage: dataspread-server [--addr HOST:PORT] [--dir PATH] [--metrics-dump]");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut dir: Option<String> = None;
    let mut metrics_dump = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--dir" => dir = Some(args.next().unwrap_or_else(|| usage())),
            "--metrics-dump" => metrics_dump = true,
            _ => usage(),
        }
    }
    let workspace = match &dir {
        Some(d) => match Workspace::open(d) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("dataspread-server: cannot open workspace {d}: {e}");
                std::process::exit(1);
            }
        },
        None => Workspace::in_memory(),
    };
    if metrics_dump {
        let root = dir.as_ref().map(std::path::Path::new);
        print!(
            "{}",
            dataspread_server::metrics_exposition(&workspace, root)
        );
        return;
    }
    let handle = match dataspread_server::serve(workspace, &addr) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("dataspread-server: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", handle.local_addr());
    // Park forever: the accept loop owns the process from here.
    loop {
        std::thread::park();
    }
}
