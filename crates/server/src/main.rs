//! `dataspread-server`: serve a workspace directory over TCP.
//!
//! ```text
//! dataspread-server --addr 127.0.0.1:7878 --dir /var/lib/dataspread
//! ```
//!
//! `--addr` defaults to `127.0.0.1:7878`; port 0 picks a free port.
//! `--dir` selects the durable workspace root (created if absent);
//! without it the server runs an in-memory workspace. Prints
//! `listening on <addr>` once the socket is bound — supervisors and the
//! integration tests wait for that line before connecting.

use dataspread_workspace::Workspace;

fn usage() -> ! {
    eprintln!("usage: dataspread-server [--addr HOST:PORT] [--dir PATH]");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut dir: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--dir" => dir = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }
    let workspace = match &dir {
        Some(d) => match Workspace::open(d) {
            Ok(ws) => ws,
            Err(e) => {
                eprintln!("dataspread-server: cannot open workspace {d}: {e}");
                std::process::exit(1);
            }
        },
        None => Workspace::in_memory(),
    };
    let handle = match dataspread_server::serve(workspace, &addr) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("dataspread-server: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", handle.local_addr());
    // Park forever: the accept loop owns the process from here.
    loop {
        std::thread::park();
    }
}
