//! End-to-end crash test against the real `dataspread-server` binary:
//! several concurrent TCP clients drive the full session API while the
//! server process is SIGKILLed mid-stream, then a restarted server over
//! the same directory must serve back every edit that was acknowledged
//! (durable receipt or successful `await_commit`) before the kill.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dataspread_client::Client;
use dataspread_grid::{CellAddr, CellValue, Rect};
use dataspread_workspace::Edit;

const CLIENTS: usize = 4;
/// Disjoint row band per client so verification is a window fetch.
const BAND: u32 = 10_000;

struct Server {
    child: Child,
    addr: SocketAddr,
}

impl Server {
    /// Spawn the real binary on a fresh port and wait for its readiness
    /// line.
    fn spawn(dir: &std::path::Path) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_dataspread-server"))
            .args(["--addr", "127.0.0.1:0", "--dir"])
            .arg(dir)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn dataspread-server");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("readiness line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected readiness line: {line:?}"))
            .parse()
            .expect("addr parses");
        Server { child, addr }
    }

    fn kill(mut self) {
        self.child.kill().expect("SIGKILL server");
        self.child.wait().expect("reap server");
    }
}

/// One client's workload: loop over the full API surface — open, apply,
/// stage+await, fetch, checkpoint — recording each acknowledged cell,
/// until the server dies underneath it.
fn client_loop(id: usize, addr: SocketAddr, stop: &AtomicBool) -> Vec<(CellAddr, f64)> {
    let client = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => return Vec::new(), // server died before we dialed in
    };
    let session = client.session();
    // All clients share one sheet: opens race, edits interleave.
    if session.open_sheet("grid").is_err() {
        return Vec::new();
    }
    let base = id as u32 * BAND;
    let mut acked: Vec<(CellAddr, f64)> = Vec::new();
    let mut i = 0u32;
    loop {
        if stop.load(Ordering::Relaxed) && i > 0 {
            // Keep at least one full iteration so "mid-stream" is real.
            return acked;
        }
        // A committed apply_edit: acknowledged iff the receipt is
        // durable.
        let addr_a = CellAddr::new(base + i * 2, 0);
        let val_a = f64::from(id as u32 * 7 + i);
        match session.apply_edit(
            "grid",
            Edit::Set {
                row: addr_a.row,
                col: 0,
                input: val_a.to_string(),
            },
        ) {
            Ok(r) if r.durable => acked.push((addr_a, val_a)),
            Ok(_) | Err(_) => return acked,
        }
        // A staged window: acknowledged only once await_commit returns.
        let mut staged: Vec<(CellAddr, f64)> = Vec::new();
        let mut last_ticket = 0;
        for k in 0..3u32 {
            let addr_s = CellAddr::new(base + i * 2 + 1, k + 1);
            let val_s = f64::from(i * 10 + k);
            match session.stage_edit(
                "grid",
                Edit::Set {
                    row: addr_s.row,
                    col: addr_s.col,
                    input: val_s.to_string(),
                },
            ) {
                Ok(r) => {
                    last_ticket = r.ticket;
                    staged.push((addr_s, val_s));
                }
                Err(_) => return acked, // staged-but-unawaited: NOT acked
            }
        }
        if session.await_commit("grid", last_ticket).is_err() {
            return acked;
        }
        acked.extend(staged);
        // Reads and maintenance exercise the rest of the surface; their
        // failures only mean the server is gone.
        if session
            .fetch_window("grid", Rect::new(base, 0, base + i * 2 + 1, 4))
            .is_err()
        {
            return acked;
        }
        if i % 8 == 7 && session.checkpoint("grid").is_err() {
            return acked;
        }
        i += 1;
    }
}

#[test]
fn concurrent_clients_survive_sigkill_and_restart() {
    let dir = std::env::temp_dir().join(format!("ds-e2e-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();

    let server = Server::spawn(&dir);
    let addr = server.addr;
    let stop = Arc::new(AtomicBool::new(false));

    let acked: Vec<(CellAddr, f64)> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|id| {
                let stop = Arc::clone(&stop);
                scope.spawn(move || client_loop(id, addr, &stop))
            })
            .collect();
        // Let the fleet build up real traffic, then pull the plug —
        // SIGKILL, no drain, while edits are in flight.
        std::thread::sleep(Duration::from_millis(600));
        server.kill();
        stop.store(true, Ordering::Relaxed);
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect()
    });

    assert!(
        acked.len() >= CLIENTS * 4,
        "too little acknowledged traffic before the kill ({} cells) — \
         the kill came too early to mean anything",
        acked.len()
    );

    // Restart over the same directory: recovery must surface every
    // acknowledged edit through fetch_window.
    let server = Server::spawn(&dir);
    let client = Client::connect(server.addr).expect("reconnect after restart");
    let session = client.session();
    session.open_sheet("grid").expect("reopen after restart");
    for band in 0..CLIENTS {
        let base = band as u32 * BAND;
        let window = session
            .fetch_window("grid", Rect::new(base, 0, base + BAND - 1, 4))
            .expect("window after restart");
        for (addr, val) in acked.iter().filter(|(a, _)| a.row / BAND == band as u32) {
            let cell = window.cell_at(*addr).unwrap_or_else(|| {
                panic!("acknowledged cell {addr:?} lost across SIGKILL+restart")
            });
            assert_eq!(
                cell.value,
                CellValue::Number(*val),
                "acknowledged cell {addr:?} recovered with the wrong value"
            );
        }
    }
    server.kill();
    std::fs::remove_dir_all(&dir).ok();
}
