//! End-to-end observability: a live TCP server answering
//! `Request::Metrics` with the workspace's full registry snapshot — op
//! latency histograms, server request/byte counters, per-sheet health —
//! including a sheet degraded by an injected WAL fsync fault, whose
//! transition must be visible both in the snapshot's health list and as
//! a `degraded` record in the event ring.

use std::path::PathBuf;
use std::sync::Arc;

use dataspread_client::Client;
use dataspread_proto::codes;
use dataspread_relstore::{FaultFs, FaultKind, FaultOp, FaultPlan, FaultRule};
use dataspread_server::{metrics_exposition, serve, serve_with, ServerConfig};
use dataspread_workspace::{Edit, Health, Workspace, WorkspaceConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ds-metrics-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn set(row: u32, input: &str) -> Edit {
    Edit::Set {
        row,
        col: 0,
        input: input.into(),
    }
}

#[test]
fn metrics_over_tcp_capture_ops_and_degrade() {
    let dir = temp_dir("degrade");
    let plan = FaultPlan::new();
    let ws = Workspace::open_with(
        &dir,
        WorkspaceConfig {
            storage_fs: Some(FaultFs::new(Arc::clone(&plan))),
            ..WorkspaceConfig::default()
        },
    )
    .unwrap();
    let handle = serve(ws, "127.0.0.1:0").unwrap();
    let client = Client::connect(handle.local_addr()).unwrap();
    let session = client.session();
    session.open_sheet("grid").unwrap();
    for i in 0..4 {
        session.apply_edit("grid", set(i, &i.to_string())).unwrap();
    }

    // Healthy snapshot: the four edits show up in the session op
    // histogram, the server-side counters saw this connection's frames,
    // and the sheet reports healthy.
    let snap = session.metrics().unwrap();
    assert!(snap.counter("session_ops{op=\"apply_edit\"}").unwrap_or(0) >= 4);
    let apply = snap
        .histogram("session_op_ns{op=\"apply_edit\"}")
        .expect("apply_edit histogram");
    assert!(apply.count() >= 1, "first op is always latency-sampled");
    assert!(apply.p99() > 0);
    assert!(
        snap.counter("server_requests{kind=\"apply_edit\"}")
            .unwrap_or(0)
            >= 4
    );
    assert!(
        snap.counter("server_requests{kind=\"open_sheet\"}")
            .unwrap_or(0)
            >= 1
    );
    assert!(snap.counter("server_frame_bytes_in").unwrap_or(0) > 0);
    assert!(snap.counter("server_frame_bytes_out").unwrap_or(0) > 0);
    assert!(snap.gauge("server_connections_in_flight").unwrap_or(0) >= 1);
    assert!(snap.counter("wal_fsyncs{sheet=\"grid\"}").unwrap_or(0) > 0);
    let health = snap.sheet_health("grid").expect("grid health");
    assert_eq!(health.health, Health::Healthy);

    // Every WAL fsync fails from here on: the next durable edits fail
    // and the sheet degrades.
    plan.push(
        FaultRule::new(FaultOp::Sync, 0, FaultKind::Io)
            .sticky()
            .on_path("wal"),
    );
    assert!(session.apply_edit("grid", set(10, "x")).is_err());
    assert!(session.apply_edit("grid", set(11, "y")).is_err());

    // The degrade is visible over the wire three ways: the stats
    // payload, the snapshot's health list, and the event ring.
    let stats = session.stats("grid").unwrap();
    assert_eq!(stats.health, Health::Degraded);
    assert!(stats.degraded_cause.is_some(), "stats carries the cause");

    let snap = session.metrics().unwrap();
    let health = snap.sheet_health("grid").expect("grid health");
    assert_eq!(health.health, Health::Degraded);
    assert!(health.cause.is_some());
    let degraded: Vec<_> = snap
        .events
        .iter()
        .filter(|e| e.kind == "degraded" && e.sheet == "grid")
        .collect();
    assert_eq!(degraded.len(), 1, "one transition, one event: {degraded:?}");
    assert!(!degraded[0].outcome.is_empty(), "event carries the cause");

    // The error counters saw the degraded rejections.
    let errors: u64 = snap
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("server_errors"))
        .map(|&(_, v)| v)
        .sum();
    assert!(errors >= 2, "got {errors}");

    drop(client);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn busy_rejections_are_counted_and_ring_buffered() {
    // A zero-size admission window rejects every StageEdit; each
    // rejection must bump `server_errors{code=BUSY}` and land a
    // `busy_reject` record in the event ring.
    let handle = serve_with(
        Workspace::in_memory(),
        "127.0.0.1:0",
        ServerConfig {
            max_staged_per_conn: 0,
            ..Default::default()
        },
    )
    .unwrap();
    let client = Client::connect(handle.local_addr()).unwrap();
    let session = client.session();
    session.open_sheet("s").unwrap();
    for _ in 0..3 {
        assert!(session.stage_edit("s", set(0, "1")).is_err());
    }
    let snap = session.metrics().unwrap();
    let key = format!("server_errors{{code=\"{}\"}}", codes::BUSY);
    assert_eq!(snap.counter(&key), Some(3));
    let busy = snap
        .events
        .iter()
        .filter(|e| e.kind == "busy_reject" && e.sheet == "s")
        .count();
    assert_eq!(busy, 3);
    drop(client);
    handle.shutdown();
}

#[test]
fn exposition_reopens_sheets_from_disk() {
    // Build a durable workspace, let it go, then render the exposition
    // from a cold open — the dump must rediscover the sheet directory
    // and report its recovered state.
    let dir = temp_dir("dump");
    {
        let ws = Workspace::open(&dir).unwrap();
        let session = ws.session();
        session.open_sheet("grid").unwrap();
        for i in 0..8 {
            session.apply_edit("grid", set(i, &i.to_string())).unwrap();
        }
    }
    let ws = Workspace::open(&dir).unwrap();
    let text = metrics_exposition(&ws, Some(&dir));
    assert!(
        text.contains("wal_bytes{sheet=\"grid\"}"),
        "recovered WAL size missing from:\n{text}"
    );
    assert!(
        text.contains("sheet_health{sheet=\"grid\"} 0"),
        "healthy sheet line missing from:\n{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
