//! Reconnecting-client end-to-end suite: one `Client` instance rides
//! across a server SIGKILL + restart on the same address.
//!
//! Two scenarios:
//!
//! * `same_client_survives_restart` — the plain restart: everything
//!   acknowledged was durable, so after the restart the *same* client
//!   object reconnects, reconciles (nothing to re-stage) and keeps
//!   working; every acknowledged edit is still served.
//! * `lost_tail_is_restaged_after_restart` — the machine-crash shape:
//!   after the kill the WAL's unsynced tail is truncated away (SIGKILL
//!   alone loses nothing — the page cache survives the process — so the
//!   test tears the file the way a power cut would). The restarted
//!   server's recovery horizon then sits below tickets the client holds
//!   staged receipts for, and the reconnect protocol must re-stage
//!   exactly those, so a later `await_commit` lands every one.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use dataspread_client::{Client, ClientConfig};
use dataspread_engine::durable::wal_path;
use dataspread_grid::{CellAddr, CellValue, Rect};
use dataspread_relstore::wal::{WAL_HEADER_LEN, WAL_RECORD_OVERHEAD};
use dataspread_workspace::Edit;

struct Server {
    child: Child,
    addr: SocketAddr,
}

impl Server {
    /// Spawn the real binary and wait for its readiness line. `addr`
    /// `127.0.0.1:0` picks a free port; a concrete port restarts there.
    fn spawn_on(dir: &std::path::Path, addr: &str) -> std::io::Result<Server> {
        let mut child = Command::new(env!("CARGO_BIN_EXE_dataspread-server"))
            .args(["--addr", addr, "--dir"])
            .arg(dir)
            .stdout(Stdio::piped())
            .spawn()?;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line)?;
        match line.trim().strip_prefix("listening on ") {
            Some(a) => Ok(Server {
                child,
                addr: a.parse().expect("addr parses"),
            }),
            None => {
                // Bind failed (port still in TIME_WAIT after the kill) —
                // reap and let the caller retry.
                child.kill().ok();
                child.wait().ok();
                Err(std::io::Error::other(format!(
                    "no readiness line: {line:?}"
                )))
            }
        }
    }

    /// Restart on the exact address a previous incarnation used,
    /// retrying while the OS releases the port.
    fn respawn(dir: &std::path::Path, addr: SocketAddr) -> Server {
        let mut last = None;
        for _ in 0..50 {
            match Self::spawn_on(dir, &addr.to_string()) {
                Ok(s) => return s,
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        panic!("could not rebind {addr}: {last:?}");
    }

    fn kill(mut self) {
        self.child.kill().expect("SIGKILL server");
        self.child.wait().expect("reap server");
    }
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ds-reconnect-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A client that keeps retrying long enough to cover a restart window.
fn patient_client(addr: SocketAddr) -> Client {
    Client::connect_with(
        addr,
        ClientConfig {
            reconnect_retries: 40,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_millis(250),
            ..ClientConfig::default()
        },
    )
    .expect("connect")
}

fn set(row: u32, col: u32, val: f64) -> Edit {
    Edit::Set {
        row,
        col,
        input: val.to_string(),
    }
}

fn assert_cells(session: &dataspread_client::RemoteSession, acked: &[(CellAddr, f64)]) {
    let window = session
        .fetch_window("grid", Rect::new(0, 0, 200, 8))
        .expect("verification window");
    for (addr, val) in acked {
        let cell = window
            .cell_at(*addr)
            .unwrap_or_else(|| panic!("acknowledged cell {addr:?} lost"));
        assert_eq!(
            cell.value,
            CellValue::Number(*val),
            "acknowledged cell {addr:?} has the wrong value"
        );
    }
}

#[test]
fn same_client_survives_restart() {
    let dir = temp_dir("plain");
    let server = Server::spawn_on(&dir, "127.0.0.1:0").expect("first spawn");
    let addr = server.addr;

    let client = patient_client(addr);
    let session = client.session();
    session.open_sheet("grid").expect("open");
    let (inc_before, _) = session.durable_ticket("grid").expect("ticket");

    let mut acked: Vec<(CellAddr, f64)> = Vec::new();
    // Committed edits and an awaited staged window: all acknowledged.
    for i in 0..4u32 {
        let val = f64::from(100 + i);
        session.apply_edit("grid", set(i, 0, val)).expect("apply");
        acked.push((CellAddr::new(i, 0), val));
    }
    let mut last_ticket = 0;
    for i in 0..6u32 {
        let val = f64::from(200 + i);
        let receipt = session.stage_edit("grid", set(i, 1, val)).expect("stage");
        last_ticket = receipt.ticket;
        acked.push((CellAddr::new(i, 1), val));
    }
    session.await_commit("grid", last_ticket).expect("await");

    server.kill();
    let server = Server::respawn(&dir, addr);

    // The same client object reconnects under the hood; the incarnation
    // must have moved and nothing acknowledged may be missing.
    let (inc_after, _) = session
        .durable_ticket("grid")
        .expect("ticket after restart");
    assert!(
        inc_after > inc_before,
        "restart must bump the incarnation ({inc_before} -> {inc_after})"
    );
    assert_cells(&session, &acked);

    // And it keeps taking writes — synchronous and pipelined.
    for i in 0..3u32 {
        let val = f64::from(300 + i);
        session
            .apply_edit("grid", set(i, 2, val))
            .expect("apply after restart");
        acked.push((CellAddr::new(i, 2), val));
    }
    let receipt = session
        .stage_edit("grid", set(9, 2, 399.0))
        .expect("stage after restart");
    session
        .await_commit("grid", receipt.ticket)
        .expect("await after restart");
    acked.push((CellAddr::new(9, 2), 399.0));
    assert_cells(&session, &acked);

    server.kill();
    std::fs::remove_dir_all(&dir).ok();
}

/// Record end-offsets in a WAL segment, parsed from the framing alone.
fn record_ends(wal_bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut off = WAL_HEADER_LEN as usize;
    while off + WAL_RECORD_OVERHEAD as usize <= wal_bytes.len() {
        let len = u32::from_le_bytes(wal_bytes[off..off + 4].try_into().unwrap()) as usize;
        let end = off + WAL_RECORD_OVERHEAD as usize + len;
        if end > wal_bytes.len() {
            break;
        }
        ends.push(end);
        off = end;
    }
    ends
}

#[test]
fn lost_tail_is_restaged_after_restart() {
    let dir = temp_dir("restage");
    let server = Server::spawn_on(&dir, "127.0.0.1:0").expect("first spawn");
    let addr = server.addr;

    let client = patient_client(addr);
    let session = client.session();
    session.open_sheet("grid").expect("open");

    // One durably committed edit, then a staged window where only the
    // third ticket is awaited: tickets 4..=8 are held as staged receipts.
    session.apply_edit("grid", set(0, 0, 1.0)).expect("apply");
    let mut tickets = Vec::new();
    let mut staged_vals: Vec<(CellAddr, f64)> = Vec::new();
    for i in 0..8u32 {
        let val = f64::from(500 + i);
        let receipt = session.stage_edit("grid", set(i, 3, val)).expect("stage");
        tickets.push(receipt.ticket);
        staged_vals.push((CellAddr::new(i, 3), val));
    }
    session
        .await_commit("grid", tickets[2])
        .expect("await early");

    server.kill();

    // SIGKILL loses nothing (the kernel still holds the appended bytes),
    // so simulate the machine crash: tear the WAL after the last awaited
    // record. Everything awaited stays; later records vanish.
    let wal = wal_path(dir.join("grid"));
    let bytes = std::fs::read(&wal).expect("read wal");
    let ends = record_ends(&bytes);
    assert!(
        ends.len() >= 9,
        "expected at least 9 records (1 applied + 8 staged), got {}",
        ends.len()
    );
    // Keep the first awaited prefix (apply + 3 staged records), tear the
    // bytes of everything after plus a few bytes into the next record so
    // recovery also exercises the torn-record path.
    let keep = ends[3] + 3;
    let file = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal)
        .expect("open wal for truncate");
    file.set_len(keep as u64).expect("tear wal tail");
    drop(file);

    let server = Server::respawn(&dir, addr);

    // The restarted recovery horizon must sit below the lost tickets…
    let (_, horizon) = session.durable_ticket("grid").expect("horizon");
    assert!(
        horizon < *tickets.last().unwrap(),
        "horizon {horizon} unexpectedly covers lost ticket {}",
        tickets.last().unwrap()
    );

    // …and awaiting the last staged ticket must still succeed: the
    // reconnect re-staged the lost entries and remapped the ticket.
    session
        .await_commit("grid", *tickets.last().unwrap())
        .expect("await across restart re-stages the lost tail");

    // Every staged edit the client got a receipt for is served.
    assert_cells(&session, &staged_vals);
    assert_cells(&session, &[(CellAddr::new(0, 0), 1.0)]);

    server.kill();
    std::fs::remove_dir_all(&dir).ok();
}
