//! Protocol robustness: the server must survive every malformed or
//! hostile byte stream a client can produce — answering with a coded
//! protocol error where possible, closing the connection, and never
//! taking the process (or other connections) down with it.

use std::io::Write;
use std::net::TcpStream;

use dataspread_proto::{codes, read_frame, write_frame, Request, Response, PROTOCOL_VERSION};
use dataspread_server::{serve, ServerHandle};
use dataspread_workspace::{Edit, Workspace, WorkspaceError};

fn hello(stream: &mut TcpStream) {
    write_frame(
        stream,
        &Request::Hello {
            version: PROTOCOL_VERSION,
        }
        .encode(1),
    )
    .unwrap();
    let payload = read_frame(stream).unwrap().unwrap();
    let (_, resp) = Response::decode(&payload).unwrap();
    assert!(matches!(resp, Response::Hello { .. }));
}

/// The server is still healthy: a fresh, well-behaved connection works.
fn assert_server_alive(handle: &ServerHandle) {
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();
    hello(&mut s);
    write_frame(&mut s, &Request::Ping.encode(2)).unwrap();
    let payload = read_frame(&mut s).unwrap().unwrap();
    assert_eq!(Response::decode(&payload).unwrap().1, Response::Pong);
}

#[test]
fn garbage_frame_gets_protocol_error_and_close() {
    let handle = serve(Workspace::in_memory(), "127.0.0.1:0").unwrap();
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();
    hello(&mut s);
    // A validly-framed payload of garbage: req id 77, nonsense tag.
    let mut payload = 77u64.to_le_bytes().to_vec();
    payload.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
    write_frame(&mut s, &payload).unwrap();
    let resp = read_frame(&mut s).unwrap().unwrap();
    let (id, resp) = Response::decode(&resp).unwrap();
    assert_eq!(id, 77, "the error is addressed to the bad request's id");
    let Response::Err(e) = resp else {
        panic!("expected protocol error, got {resp:?}");
    };
    assert_eq!(e.code, codes::PROTOCOL);
    assert!(
        read_frame(&mut s).unwrap().is_none(),
        "undecodable input closes the connection"
    );
    assert_server_alive(&handle);
    handle.shutdown();
}

#[test]
fn oversized_frame_is_rejected() {
    let handle = serve(Workspace::in_memory(), "127.0.0.1:0").unwrap();
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();
    hello(&mut s);
    // Declared length far beyond MAX_FRAME; the server must refuse to
    // allocate it and drop the connection.
    s.write_all(&u32::MAX.to_le_bytes()).unwrap();
    s.flush().unwrap();
    // Best-effort protocol error (id 0 — framing itself is broken), then
    // close; closing without the courtesy reply is also acceptable.
    if let Ok(Some(p)) = read_frame(&mut s) {
        let (_, resp) = Response::decode(&p).unwrap();
        let Response::Err(e) = resp else {
            panic!("expected error, got {resp:?}");
        };
        assert_eq!(e.code, codes::PROTOCOL);
        assert!(read_frame(&mut s).unwrap().is_none());
    }
    assert_server_alive(&handle);
    handle.shutdown();
}

#[test]
fn truncated_frame_then_drop_leaves_server_healthy() {
    let handle = serve(Workspace::in_memory(), "127.0.0.1:0").unwrap();
    {
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        hello(&mut s);
        // Claim a 1000-byte request, deliver 3 bytes, vanish.
        s.write_all(&1000u32.to_le_bytes()).unwrap();
        s.write_all(&[1, 2, 3]).unwrap();
        s.flush().unwrap();
        // Connection drops here (socket closed by scope exit).
    }
    assert_server_alive(&handle);
    handle.shutdown();
}

#[test]
fn drop_mid_length_prefix_leaves_server_healthy() {
    let handle = serve(Workspace::in_memory(), "127.0.0.1:0").unwrap();
    {
        let mut s = TcpStream::connect(handle.local_addr()).unwrap();
        hello(&mut s);
        s.write_all(&[9u8]).unwrap(); // one byte of a four-byte prefix
        s.flush().unwrap();
    }
    assert_server_alive(&handle);
    handle.shutdown();
}

#[test]
fn pending_calls_fail_cleanly_when_server_goes_away() {
    let handle = serve(Workspace::in_memory(), "127.0.0.1:0").unwrap();
    let client = dataspread_client::Client::connect(handle.local_addr()).unwrap();
    let session = client.session();
    session.open_sheet("s").unwrap();
    session
        .apply_edit(
            "s",
            Edit::Set {
                row: 0,
                col: 0,
                input: "1".into(),
            },
        )
        .unwrap();
    handle.shutdown();
    // The accept loop is gone; existing connection reads EOF soon. Every
    // further call must fail with a coded Io error, not hang or panic.
    let err = loop {
        match session.value("s", dataspread_grid::CellAddr::new(0, 0)) {
            Ok(_) => continue, // server thread still draining; retry
            Err(e) => break e,
        }
    };
    assert!(
        matches!(err, WorkspaceError::Io(_)),
        "expected Io, got {err:?}"
    );
    assert_eq!(err.code(), codes::IO);
}

#[test]
fn reconnect_after_server_restart_preserves_acknowledged_edits() {
    let dir = std::env::temp_dir().join(format!("ds-reconnect-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Round 1: commit edits, stop the server (in-process "restart").
    let handle = serve(Workspace::open(&dir).unwrap(), "127.0.0.1:0").unwrap();
    let client = dataspread_client::Client::connect(handle.local_addr()).unwrap();
    let session = client.session();
    session.open_sheet("book").unwrap();
    let mut last = 0;
    for i in 0..20u32 {
        let r = session
            .stage_edit(
                "book",
                Edit::Set {
                    row: i,
                    col: 0,
                    input: i.to_string(),
                },
            )
            .unwrap();
        last = r.ticket;
    }
    session.await_commit("book", last).unwrap();
    drop(client);
    handle.shutdown();

    // Round 2: a new server over the same directory; a reconnecting
    // client must see every acknowledged edit.
    let handle = serve(Workspace::open(&dir).unwrap(), "127.0.0.1:0").unwrap();
    let client = dataspread_client::Client::connect(handle.local_addr()).unwrap();
    let session = client.session();
    session.open_sheet("book").unwrap();
    let window = session
        .fetch_window("book", dataspread_grid::Rect::new(0, 0, 19, 0))
        .unwrap();
    assert_eq!(window.filled_count(), 20);
    for i in 0..20u32 {
        let cell = window
            .cell_at(dataspread_grid::CellAddr::new(i, 0))
            .unwrap_or_else(|| panic!("row {i} lost across restart"));
        assert_eq!(cell.value, dataspread_grid::CellValue::Number(f64::from(i)));
    }
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
