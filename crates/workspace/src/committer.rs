//! The dedicated group-commit thread.
//!
//! Writers append to a sheet's [`SharedWal`] and receive a commit ticket;
//! instead of fsyncing themselves they block on
//! [`SharedWal::wait_durable`] while this thread flushes in rounds: every
//! registered WAL with outstanding records gets **one** fsync covering
//! every record appended since its last flush — the group-commit batching
//! that turns K writers × 1 fsync/op into ~1 fsync per batch. Durability
//! is not weakened: a writer is only unblocked once the fsync covering
//! its ticket has completed (a failed fsync wakes its waiters with the
//! error instead).
//!
//! The hot path is deliberately notification-free: sheets *register*
//! their WAL once ([`GroupCommitter::register`]), the committer keeps
//! flushing as long as any registered WAL has pending records, and parks
//! only when the whole workspace goes quiet. Writers pay a single atomic
//! load per op ([`GroupCommitter::nudge`]) unless they are the ones
//! waking a parked committer — no per-op queue, no per-op notify.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use dataspread_relstore::SharedWal;

struct Registry {
    /// Every WAL this committer is responsible for (deduplicated by
    /// identity; sheets register once at open).
    wals: Vec<Arc<SharedWal>>,
    shutdown: bool,
}

struct Shared {
    registry: Mutex<Registry>,
    wake: Condvar,
    /// True while the committer thread is parked on `wake` — the only
    /// state in which writers need to notify.
    parked: AtomicBool,
    /// Flush rounds completed (one round = one pass over the registered
    /// WALs, one fsync per WAL with pending records).
    rounds: AtomicU64,
    /// Total WAL fsyncs issued by the committer.
    syncs: AtomicU64,
}

/// Handle to the dedicated committer thread. Dropping it shuts the thread
/// down after a final drain; nudges arriving after shutdown fall back to
/// an inline fsync, so no writer can be left waiting on a dead thread.
pub struct GroupCommitter {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for GroupCommitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommitter")
            .field("rounds", &self.rounds())
            .field("syncs", &self.syncs())
            .finish()
    }
}

impl Default for GroupCommitter {
    fn default() -> Self {
        Self::new()
    }
}

impl GroupCommitter {
    /// Spawn the committer thread.
    pub fn new() -> GroupCommitter {
        let shared = Arc::new(Shared {
            registry: Mutex::new(Registry {
                wals: Vec::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            parked: AtomicBool::new(false),
            rounds: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ds-group-commit".into())
                .spawn(move || Self::run(&shared))
                .expect("spawn group-commit thread")
        };
        GroupCommitter {
            shared,
            thread: Some(thread),
        }
    }

    fn run(shared: &Shared) {
        let mut wals: Vec<Arc<SharedWal>> = Vec::new();
        // Pre-park spin budget: on multi-core boxes the next batch is
        // usually already being appended when a flush round ends, so a few
        // yields before paying the park/notify futex round-trip keep the
        // committer hot. On a single core the spin only steals cycles from
        // the writers that would produce that batch — skip it.
        let pre_park_spin: u32 = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .saturating_sub(1)
            .min(8) as u32
            * 16;
        loop {
            // Cheap second chance on the previous round's WAL set before
            // touching the registry lock or the condvar.
            for _ in 0..pre_park_spin {
                if wals.iter().any(|w| w.has_pending()) {
                    break;
                }
                std::thread::yield_now();
            }
            // Refresh the registered set and park while the workspace is
            // quiet (nothing pending anywhere). The parked flag is raised
            // *before* the pending re-check, so a writer that appends
            // concurrently either is seen by the check or sees the flag
            // and notifies; the bounded wait is the backstop that turns
            // any residual missed wakeup into a ≤500µs delay instead of a
            // hang.
            {
                let mut registry = shared.registry.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    // A poisoned WAL is permanently failed: its waiters
                    // were woken with the error, and retrying the fsync
                    // could acknowledge records the kernel already
                    // dropped. Unregister it for good.
                    registry.wals.retain(|w| w.poisoned().is_none());
                    wals.clear();
                    wals.extend(registry.wals.iter().cloned());
                    shared.parked.store(true, Ordering::SeqCst);
                    if wals.iter().any(|w| w.has_pending()) {
                        shared.parked.store(false, Ordering::SeqCst);
                        break;
                    }
                    if registry.shutdown {
                        return; // quiet and told to stop
                    }
                    let (guard, _) = shared
                        .wake
                        .wait_timeout(registry, std::time::Duration::from_micros(500))
                        .unwrap_or_else(|e| e.into_inner());
                    registry = guard;
                    shared.parked.store(false, Ordering::SeqCst);
                }
            }
            // Adaptive dwell (the classic group-commit delay): writers
            // that are mid-apply get scheduling slots to append before
            // the fsync starts, growing the batch each flush covers.
            // Yield while the append horizon is still advancing, bounded
            // so a steady trickle cannot starve the flush — a few µs of
            // added latency against a ~100µs fsync, a materially fuller
            // batch whenever writers outnumber cores.
            let mut horizon: u64 = wals.iter().map(|w| w.appended_seq()).sum();
            for _ in 0..8 {
                std::thread::yield_now();
                let now: u64 = wals.iter().map(|w| w.appended_seq()).sum();
                if now == horizon {
                    break;
                }
                horizon = now;
            }
            for wal in &wals {
                // One fsync covers every record this WAL accumulated since
                // its last flush — the flush targets the append horizon at
                // fsync start, so even records appended during the dwell
                // ride along. A failed fsync permanently poisons the WAL
                // (its waiters are woken with the error by the SharedWal
                // itself); it is never retried — the data the failure
                // covered may already be gone from the page cache, so a
                // "successful" retry would acknowledge lost records. The
                // next registry refresh unregisters it.
                if wal.poisoned().is_none() && wal.has_pending() {
                    let _ = wal.sync();
                    shared.syncs.fetch_add(1, Ordering::Relaxed);
                }
            }
            shared.rounds.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Register `wal` with the committer (idempotent; once per sheet at
    /// open). Registered WALs are flushed whenever they have pending
    /// records.
    pub fn register(&self, wal: &Arc<SharedWal>) {
        let mut registry = self
            .shared
            .registry
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if !registry.wals.iter().any(|w| Arc::ptr_eq(w, wal)) {
            registry.wals.push(Arc::clone(wal));
        }
        drop(registry);
        self.nudge(wal);
    }

    /// Tell the committer there is work. One atomic load on the fast path
    /// (committer already running); a lock + notify only when it parked.
    /// After shutdown the flush happens inline instead, so a straggler
    /// writer is never left waiting on a dead thread.
    pub fn nudge(&self, wal: &Arc<SharedWal>) {
        if !self.shared.parked.load(Ordering::SeqCst) {
            return; // committer is awake and will pick the work up
        }
        let registry = self
            .shared
            .registry
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if registry.shutdown {
            drop(registry);
            let _ = wal.sync();
            return;
        }
        self.shared.wake.notify_one();
    }

    /// Flush rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.shared.rounds.load(Ordering::Relaxed)
    }

    /// Total fsyncs issued by the committer thread.
    pub fn syncs(&self) -> u64 {
        self.shared.syncs.load(Ordering::Relaxed)
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        {
            let mut registry = self
                .shared
                .registry
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            registry.shutdown = true;
            self.shared.wake.notify_all();
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}
