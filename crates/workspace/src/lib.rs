//! The concurrent workspace service: many sheets, many sessions, one
//! group-commit pipeline.
//!
//! The paper frames DataSpread as a spreadsheet *served* from a
//! database-grade engine: many users fetch positional windows and issue
//! edits against the same store ("The Future of Spreadsheets in the Big
//! Data Era" names multi-user concurrent access as the defining gap
//! between spreadsheets and databases). This crate closes that gap for
//! the Rust engine:
//!
//! * **Sharded sheets.** A [`Workspace`] owns N [`SheetEngine`]s, one per
//!   named sheet, each behind its own reader-writer lock. Readers fetch
//!   positional windows concurrently (`fetch_window` takes the shared
//!   lock); one writer per sheet mutates at a time; sessions working on
//!   *different* sheets never contend. Per-sheet state — the dependency
//!   graph included — is sharded with the sheet, so formula edits on one
//!   sheet cannot serialize against another's.
//! * **Session API.** [`Session`]s address sheets by name —
//!   [`Session::open_sheet`], [`Session::fetch_window`],
//!   [`Session::apply_edit`], [`Session::import_rows`],
//!   [`Session::checkpoint`] — a deliberately RPC-shaped surface (string
//!   sheet ids, plain-data [`Edit`] values, receipts) so a network
//!   front-end can be bolted on without reshaping the service.
//! * **Group commit.** In a durable workspace every edit appends to the
//!   sheet's WAL and receives a *commit ticket*; instead of paying one
//!   fsync per op ([`CommitMode::PerOp`], the baseline), sessions block
//!   on their ticket while a dedicated committer thread batches all
//!   outstanding records into one fsync per sheet per round
//!   ([`CommitMode::Group`], the default) — K writers × 1 fsync/op
//!   becomes ~1 fsync per batch, with the identical durability contract:
//!   `apply_edit` does not return before the edit is on stable storage.
//!
//! Crash recovery is unchanged from the single-threaded engine: each
//! sheet directory recovers independently (image + committed WAL
//! prefix), and because ops serialize under the sheet's write lock in
//! ticket order, the recovered state is always a prefix of the actual
//! edit serialization — the concurrent stress suite replays that order
//! into a single-threaded oracle and compares byte-for-byte.
//!
//! The session surface is now *wire-typed*: [`Edit`], [`EditReceipt`] and
//! the [`WindowPatch`] returned by [`Session::fetch_window`] are the
//! `dataspread-proto` wire types themselves, and every [`WorkspaceError`]
//! variant carries a stable numeric code ([`WorkspaceError::code`]) that
//! round-trips through [`WorkspaceError::from_wire`] — the TCP server and
//! client (`dataspread-server` / `dataspread-client`) frame these values
//! as-is rather than maintaining a parallel DTO layer.

mod committer;
mod service;

pub use committer::GroupCommitter;
pub use dataspread_proto::{Edit, EditReceipt, SheetStats, WindowPatch};
pub use service::{CommitMode, Session, Workspace, WorkspaceConfig, WorkspaceError};

pub use dataspread_engine::{CheckpointReport, PersistenceStats, SheetEngine};

// The observability vocabulary: the registry every workspace carries and
// the snapshot types `Session::metrics` / `Request::Metrics` serve.
pub use dataspread_obs::{
    Event, Health, HistogramSnapshot, MetricsRegistry, RegistrySnapshot, SheetHealth,
};
