//! The workspace service proper: named sheet shards behind per-sheet
//! locks, and the name-keyed session API served over them.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

use dataspread_engine::{CheckpointReport, EngineError, EngineObs, ScanValue, SheetEngine};
use dataspread_grid::{CellAddr, CellValue, Rect, SparseSheet};
use dataspread_obs::{
    now_ms, Counter, Event, Gauge, Health, Histogram, MetricsRegistry, SheetHealth,
};
use dataspread_proto::{
    codes, Edit, EditReceipt, PatchBuilder, RegistrySnapshot, SheetStats, WindowPatch, WireError,
};
use dataspread_relstore::{SharedWal, StorageFs, StoreError, WalObs};

use crate::committer::GroupCommitter;

/// How a durable workspace acknowledges committed edits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitMode {
    /// Every edit pays its own fsync before `apply_edit` returns — the
    /// safe-but-slow baseline (one fsync per op per writer).
    PerOp,
    /// Edits append and block on their commit ticket; the dedicated
    /// committer thread batches all outstanding records into one fsync
    /// per sheet per round. Same durability contract, ~1 fsync per batch.
    #[default]
    Group,
}

/// Workspace construction knobs.
#[derive(Clone)]
pub struct WorkspaceConfig {
    pub commit_mode: CommitMode,
    /// Auto-checkpoint every N logged ops on each sheet (engine default:
    /// disabled).
    pub auto_checkpoint_ops: Option<u64>,
    /// Worker threads for each sheet engine's wave recomputation
    /// (`None` = one per available core).
    pub recompute_threads: Option<usize>,
    /// Route every sheet's file I/O through this filesystem instead of
    /// the real one — the hook fault-injection tests use to script
    /// storage failures (`None` = the real OS filesystem).
    pub storage_fs: Option<Arc<dyn StorageFs>>,
    /// Record metrics (counters, latency histograms, the slow-op event
    /// ring) into the workspace's [`MetricsRegistry`]. On by default —
    /// the hot-path cost is a few relaxed atomics plus two clock reads
    /// per op; turn off to measure the uninstrumented baseline.
    pub metrics_enabled: bool,
    /// Ops slower than this land in the slow-op event ring
    /// (`None` = the registry default, 20ms).
    pub slow_op_ns: Option<u64>,
    /// Test hook: sleep this long inside the named sheet's recovery,
    /// *after* the placeholder shard is published — lets tests prove that
    /// a slow recovery stalls only its own sheet.
    #[doc(hidden)]
    pub open_stall_for_tests: Option<(String, std::time::Duration)>,
}

impl Default for WorkspaceConfig {
    fn default() -> Self {
        WorkspaceConfig {
            commit_mode: CommitMode::default(),
            auto_checkpoint_ops: None,
            recompute_threads: None,
            storage_fs: None,
            metrics_enabled: true,
            slow_op_ns: None,
            open_stall_for_tests: None,
        }
    }
}

impl std::fmt::Debug for WorkspaceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkspaceConfig")
            .field("commit_mode", &self.commit_mode)
            .field("auto_checkpoint_ops", &self.auto_checkpoint_ops)
            .field("recompute_threads", &self.recompute_threads)
            .field("storage_fs", &self.storage_fs.as_ref().map(|_| "custom"))
            .field("metrics_enabled", &self.metrics_enabled)
            .finish()
    }
}

/// Errors surfaced by the session API.
///
/// Every variant has a stable numeric wire code ([`WorkspaceError::code`],
/// constants in [`dataspread_proto::codes`]) so errors cross the network
/// as `(code, detail)` pairs and reconstruct on the client
/// ([`WorkspaceError::from_wire`]) instead of collapsing into strings.
/// The enum is `#[non_exhaustive]`: new variants may appear, and codes a
/// client does not recognize decode as [`WorkspaceError::Remote`] rather
/// than failing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkspaceError {
    /// The named sheet was never opened in this workspace.
    NoSuchSheet(String),
    /// Sheet names become directory names; only `[A-Za-z0-9_-]` survive
    /// an RPC boundary safely.
    BadSheetName(String),
    Engine(EngineError),
    Store(StoreError),
    /// Admission control rejected the request (e.g. too many staged edits
    /// in flight); retry after draining.
    Busy(String),
    /// The peer violated the wire protocol (bad frame, bad tag, version
    /// mismatch).
    Protocol(String),
    /// Transport-level I/O failure (only produced by the network layers).
    Io(String),
    /// The sheet is read-only after a permanent storage failure: fetches
    /// still serve from memory, but edits are refused until the server
    /// reopens the store. The payload is the original failure cause.
    Degraded(String),
    /// A permanent storage failure surfaced by the failing operation
    /// itself (a failed fsync, a torn checkpoint). The request that got
    /// this error was NOT made durable; the sheet degrades to read-only.
    StorageFailed(String),
    /// An error that crossed the wire with a code this build cannot map
    /// back onto a richer variant. The code is preserved verbatim, so
    /// `code()` still round-trips.
    Remote {
        code: u16,
        detail: String,
    },
}

impl std::fmt::Display for WorkspaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkspaceError::NoSuchSheet(n) => write!(f, "no such sheet: {n}"),
            WorkspaceError::BadSheetName(n) => {
                write!(f, "bad sheet name {n:?} (use [A-Za-z0-9_-])")
            }
            WorkspaceError::Engine(e) => write!(f, "engine: {e}"),
            WorkspaceError::Store(e) => write!(f, "store: {e}"),
            WorkspaceError::Busy(m) => write!(f, "busy: {m}"),
            WorkspaceError::Protocol(m) => write!(f, "protocol violation: {m}"),
            WorkspaceError::Io(m) => write!(f, "io: {m}"),
            WorkspaceError::Degraded(m) => {
                write!(f, "sheet degraded to read-only after storage failure: {m}")
            }
            WorkspaceError::StorageFailed(m) => write!(f, "storage failed: {m}"),
            WorkspaceError::Remote { code, detail } => {
                write!(f, "remote error {code:#06x}: {detail}")
            }
        }
    }
}

impl std::error::Error for WorkspaceError {}

impl From<EngineError> for WorkspaceError {
    fn from(e: EngineError) -> Self {
        WorkspaceError::Engine(e)
    }
}

impl From<StoreError> for WorkspaceError {
    fn from(e: StoreError) -> Self {
        WorkspaceError::Store(e)
    }
}

/// Commit-path error mapping: a permanent storage failure gets its own
/// session-level variant (and wire code) instead of hiding inside
/// [`WorkspaceError::Store`] — clients branch on it to stop retrying.
fn promote_storage(e: StoreError) -> WorkspaceError {
    match e {
        StoreError::StorageFailed(m) => WorkspaceError::StorageFailed(m),
        other => WorkspaceError::Store(other),
    }
}

fn store_code(e: &StoreError) -> u16 {
    match e {
        StoreError::NoSuchTable(_) => codes::STORE_NO_SUCH_TABLE,
        StoreError::TableExists(_) => codes::STORE_TABLE_EXISTS,
        StoreError::SchemaMismatch(_) => codes::STORE_SCHEMA_MISMATCH,
        StoreError::BadTupleId => codes::STORE_BAD_TUPLE_ID,
        StoreError::TupleTooLarge(_) => codes::STORE_TUPLE_TOO_LARGE,
        StoreError::Corrupt(_) => codes::STORE_CORRUPT,
        StoreError::NoSuchColumn(_) => codes::STORE_NO_SUCH_COLUMN,
        StoreError::LimitExceeded(_) => codes::STORE_LIMIT_EXCEEDED,
        StoreError::Io(_) => codes::STORE_IO,
        StoreError::StorageFailed(_) => codes::STORE_STORAGE_FAILED,
    }
}

fn store_detail(e: &StoreError) -> String {
    match e {
        StoreError::NoSuchTable(s)
        | StoreError::TableExists(s)
        | StoreError::SchemaMismatch(s)
        | StoreError::Corrupt(s)
        | StoreError::NoSuchColumn(s)
        | StoreError::LimitExceeded(s)
        | StoreError::Io(s)
        | StoreError::StorageFailed(s) => s.clone(),
        StoreError::BadTupleId => String::new(),
        StoreError::TupleTooLarge(n) => n.to_string(),
    }
}

fn store_from_wire(code: u16, detail: String) -> Option<StoreError> {
    Some(match code {
        codes::STORE_NO_SUCH_TABLE => StoreError::NoSuchTable(detail),
        codes::STORE_TABLE_EXISTS => StoreError::TableExists(detail),
        codes::STORE_SCHEMA_MISMATCH => StoreError::SchemaMismatch(detail),
        codes::STORE_BAD_TUPLE_ID => StoreError::BadTupleId,
        codes::STORE_TUPLE_TOO_LARGE => StoreError::TupleTooLarge(detail.parse().unwrap_or(0)),
        codes::STORE_CORRUPT => StoreError::Corrupt(detail),
        codes::STORE_NO_SUCH_COLUMN => StoreError::NoSuchColumn(detail),
        codes::STORE_LIMIT_EXCEEDED => StoreError::LimitExceeded(detail),
        codes::STORE_IO => StoreError::Io(detail),
        codes::STORE_STORAGE_FAILED => StoreError::StorageFailed(detail),
        _ => return None,
    })
}

impl WorkspaceError {
    /// The variant's stable wire code (see [`dataspread_proto::codes`]).
    /// Codes never change meaning across versions; `Remote` carries its
    /// original code through unchanged.
    pub fn code(&self) -> u16 {
        match self {
            WorkspaceError::NoSuchSheet(_) => codes::NO_SUCH_SHEET,
            WorkspaceError::BadSheetName(_) => codes::BAD_SHEET_NAME,
            WorkspaceError::Busy(_) => codes::BUSY,
            WorkspaceError::Protocol(_) => codes::PROTOCOL,
            WorkspaceError::Io(_) => codes::IO,
            WorkspaceError::Degraded(_) => codes::DEGRADED,
            WorkspaceError::StorageFailed(_) => codes::STORAGE_FAILED,
            WorkspaceError::Engine(EngineError::Unsupported(_)) => codes::ENGINE_UNSUPPORTED,
            WorkspaceError::Engine(EngineError::BadLink(_)) => codes::ENGINE_BAD_LINK,
            WorkspaceError::Engine(EngineError::Formula(_)) => codes::ENGINE_FORMULA,
            WorkspaceError::Engine(EngineError::Grid(_)) => codes::ENGINE_GRID,
            WorkspaceError::Engine(EngineError::Rel(_)) => codes::ENGINE_REL,
            WorkspaceError::Engine(EngineError::Store(e)) | WorkspaceError::Store(e) => {
                store_code(e)
            }
            WorkspaceError::Remote { code, .. } => *code,
        }
    }

    /// The variant's payload string as sent over the wire (the sheet
    /// name, the message — not the rendered `Display` form, so the
    /// receiving side can rebuild the same variant).
    pub fn wire_detail(&self) -> String {
        match self {
            WorkspaceError::NoSuchSheet(s)
            | WorkspaceError::BadSheetName(s)
            | WorkspaceError::Busy(s)
            | WorkspaceError::Protocol(s)
            | WorkspaceError::Io(s)
            | WorkspaceError::Degraded(s)
            | WorkspaceError::StorageFailed(s) => s.clone(),
            WorkspaceError::Engine(EngineError::Unsupported(m))
            | WorkspaceError::Engine(EngineError::BadLink(m)) => m.clone(),
            WorkspaceError::Engine(EngineError::Formula(e)) => e.to_string(),
            WorkspaceError::Engine(EngineError::Grid(e)) => e.to_string(),
            WorkspaceError::Engine(EngineError::Rel(e)) => e.to_string(),
            WorkspaceError::Engine(EngineError::Store(e)) | WorkspaceError::Store(e) => {
                store_detail(e)
            }
            WorkspaceError::Remote { detail, .. } => detail.clone(),
        }
    }

    /// Package for the wire: `(code, detail)`.
    pub fn to_wire(&self) -> WireError {
        WireError::new(self.code(), self.wire_detail())
    }

    /// Rebuild from a wire `(code, detail)` pair. Codes with a structural
    /// local variant reconstruct it exactly; parser-level engine codes
    /// and unknown codes become [`WorkspaceError::Remote`], preserving
    /// the code, so `from_wire(e.code(), e.wire_detail()).code() ==
    /// e.code()` holds for *every* error.
    pub fn from_wire(code: u16, detail: String) -> WorkspaceError {
        match code {
            codes::NO_SUCH_SHEET => WorkspaceError::NoSuchSheet(detail),
            codes::BAD_SHEET_NAME => WorkspaceError::BadSheetName(detail),
            codes::BUSY => WorkspaceError::Busy(detail),
            codes::PROTOCOL => WorkspaceError::Protocol(detail),
            codes::IO => WorkspaceError::Io(detail),
            codes::DEGRADED => WorkspaceError::Degraded(detail),
            codes::STORAGE_FAILED => WorkspaceError::StorageFailed(detail),
            codes::ENGINE_UNSUPPORTED => WorkspaceError::Engine(EngineError::Unsupported(detail)),
            codes::ENGINE_BAD_LINK => WorkspaceError::Engine(EngineError::BadLink(detail)),
            _ => match store_from_wire(code, detail.clone()) {
                Some(store) => WorkspaceError::Store(store),
                None => WorkspaceError::Remote { code, detail },
            },
        }
    }
}

impl From<WireError> for WorkspaceError {
    fn from(e: WireError) -> Self {
        WorkspaceError::from_wire(e.code, e.detail)
    }
}

/// One sheet shard: the engine behind its reader-writer lock plus the
/// shared WAL handle the committer fsyncs through.
struct Shard {
    name: String,
    engine: RwLock<SheetEngine>,
    /// `None` for in-memory workspaces.
    wal: Option<Arc<SharedWal>>,
    /// Set by the first operation that observes the sheet degraded, so
    /// the transition lands in the event ring exactly once.
    degraded_noted: AtomicBool,
}

/// A sheet's slot in the workspace map. The slot is published (under the
/// map's short-lived write lock) *before* recovery runs, then recovery
/// proceeds outside every workspace-level lock — a slow recovery stalls
/// only sessions that touch that sheet, never openers of other sheets.
struct SheetSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

enum SlotState {
    /// The opener is recovering the engine; wait on `ready`.
    Building,
    Ready(Arc<Shard>),
    /// Recovery failed; the opener has already unlinked the slot from the
    /// map so a later `open_sheet` can retry.
    Failed(WorkspaceError),
}

impl SheetSlot {
    fn building() -> SheetSlot {
        SheetSlot {
            state: Mutex::new(SlotState::Building),
            ready: Condvar::new(),
        }
    }

    /// Block until the slot leaves `Building`.
    fn wait_ready(&self) -> Result<Arc<Shard>, WorkspaceError> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &*st {
                SlotState::Ready(shard) => return Ok(Arc::clone(shard)),
                SlotState::Failed(e) => return Err(e.clone()),
                SlotState::Building => {
                    st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    fn publish(&self, state: SlotState) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = state;
        self.ready.notify_all();
    }
}

/// One session op's instrumentation pair: an exact op counter
/// (`session_ops{op=…}`) and a latency histogram
/// (`session_op_ns{op=…}`) fed by *sampled* clock reads.
///
/// Counting is one relaxed fetch-add per op; the two `Instant::now()`
/// reads and the histogram record are paid only for one op in
/// `mask + 1`. The first op is always timed, so even tiny workloads
/// leave a latency sample, and the sequence is the counter itself, so
/// sampling costs no extra atomic. Hot mutation ops (`apply_edit`,
/// `stage_edit`) sample at 1-in-128 — an in-memory edit runs in hundreds
/// of nanoseconds, where always-on clocking alone would blow the ≤3%
/// overhead budget the obs bench enforces; the heavier ops
/// (`fetch_window`, `await_commit`) time every call.
struct OpMeter {
    ops: Arc<Counter>,
    hist: Arc<Histogram>,
    /// Sample an op's latency iff `(n - 1) & mask == 0` for its sequence
    /// number `n` (1-based). `0` times every op.
    mask: u64,
}

/// Cached per-op instrumentation handles — resolved once at workspace
/// construction so the hot path never touches the registry's map lock.
struct OpHists {
    apply_edit: OpMeter,
    fetch_window: OpMeter,
    stage_edit: OpMeter,
    await_commit: OpMeter,
}

impl OpHists {
    /// Hot-path sampling rate: time one op in 128.
    const HOT_MASK: u64 = 127;

    fn new(registry: &Arc<MetricsRegistry>) -> OpHists {
        let meter = |op: &str, mask: u64| OpMeter {
            ops: registry.counter("session_ops", &[("op", op)]),
            hist: registry.histogram("session_op_ns", &[("op", op)]),
            mask,
        };
        OpHists {
            apply_edit: meter("apply_edit", Self::HOT_MASK),
            fetch_window: meter("fetch_window", 0),
            stage_edit: meter("stage_edit", Self::HOT_MASK),
            await_commit: meter("await_commit", 0),
        }
    }
}

struct Inner {
    dir: Option<PathBuf>,
    config: WorkspaceConfig,
    sheets: RwLock<HashMap<String, Arc<SheetSlot>>>,
    committer: GroupCommitter,
    /// The workspace-wide metrics registry every layer records into
    /// (WAL fsyncs, engine recompute waves, session op latencies, …).
    metrics: Arc<MetricsRegistry>,
    op_hists: OpHists,
    /// `wal_ops_per_fsync` — appended WAL records per fsync across the
    /// workspace, refreshed by [`Session::metrics`].
    ops_per_fsync: Arc<Gauge>,
    /// Fsyncs issued inline by `CommitMode::PerOp` writers (the baseline
    /// counter the concurrency bench compares against committer batches).
    inline_syncs: AtomicU64,
    /// Yield budget a group-mode writer spins before helping with (or
    /// parking for) the flush — see [`SharedWal::commit_wait`]. Sized by
    /// core count at construction: on one core yielding hands the CPU to
    /// the other writers so the batch grows; on many cores a longer spin
    /// usually observes the committer's fsync completing.
    commit_spin: u32,
}

/// A concurrent multi-sheet workspace. Create one, hand [`Session`]s to
/// each client thread, and let them read/write concurrently: readers of a
/// sheet share its lock, writers serialize per sheet, and sessions on
/// different sheets proceed fully in parallel.
pub struct Workspace {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Workspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workspace")
            .field("dir", &self.inner.dir)
            .field("sheets", &self.sheet_names())
            .field("mode", &self.inner.config.commit_mode)
            .finish()
    }
}

fn valid_sheet_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

impl Workspace {
    /// A volatile workspace: sheets live in memory, receipts carry no
    /// durability.
    pub fn in_memory() -> Workspace {
        Self::build(None, WorkspaceConfig::default())
    }

    /// [`Workspace::in_memory`] with explicit configuration. Commit mode
    /// and storage knobs are moot without a WAL; the observability
    /// toggles (`metrics_enabled`, `slow_op_ns`) apply as usual.
    pub fn in_memory_with(config: WorkspaceConfig) -> Workspace {
        Self::build(None, config)
    }

    /// Open (or create) a durable workspace rooted at `dir` with group
    /// commit (each sheet lives in `dir/<name>/` and recovers
    /// independently on open).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Workspace, WorkspaceError> {
        Self::open_with(dir, WorkspaceConfig::default())
    }

    /// [`Workspace::open`] with explicit configuration.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        config: WorkspaceConfig,
    ) -> Result<Workspace, WorkspaceError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(StoreError::from)?;
        Ok(Self::build(Some(dir), config))
    }

    fn build(dir: Option<PathBuf>, config: WorkspaceConfig) -> Workspace {
        let metrics = MetricsRegistry::new();
        metrics.set_enabled(config.metrics_enabled);
        if let Some(ns) = config.slow_op_ns {
            metrics.set_slow_op_ns(ns);
        }
        let op_hists = OpHists::new(&metrics);
        let ops_per_fsync = metrics.gauge("wal_ops_per_fsync", &[]);
        Workspace {
            inner: Arc::new(Inner {
                dir,
                config,
                sheets: RwLock::new(HashMap::new()),
                committer: GroupCommitter::new(),
                metrics,
                op_hists,
                ops_per_fsync,
                inline_syncs: AtomicU64::new(0),
                commit_spin: std::thread::available_parallelism()
                    .map_or(1, std::num::NonZeroUsize::get)
                    .clamp(1, 16) as u32
                    * 4,
            }),
        }
    }

    /// A new session over this workspace. Sessions are cheap handles
    /// (`Clone + Send`) — one per client thread.
    pub fn session(&self) -> Session {
        Session {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Names of the sheets opened so far (including ones still
    /// recovering).
    pub fn sheet_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .sheets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// The workspace-wide metrics registry — every layer (WAL, engine,
    /// session ops, server) records into this one instance. Benches and
    /// embedders can snapshot or toggle it directly.
    pub fn metrics_registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.inner.metrics)
    }

    /// `(committer flush rounds, group fsyncs, inline per-op fsyncs)` —
    /// the observability the concurrency bench asserts batching with.
    /// Group fsyncs count every fsync issued through the group
    /// fsync-point, whether by the committer thread or a helping writer.
    pub fn commit_stats(&self) -> (u64, u64, u64) {
        let slots: Vec<Arc<SheetSlot>> = self
            .inner
            .sheets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect();
        let group_fsyncs: u64 = slots
            .iter()
            .filter_map(|slot| {
                let st = slot.state.lock().unwrap_or_else(|e| e.into_inner());
                match &*st {
                    SlotState::Ready(shard) => shard.wal.as_ref().map(|w| w.fsync_count()),
                    _ => None,
                }
            })
            .sum();
        (
            self.inner.committer.rounds(),
            group_fsyncs,
            self.inner.inline_syncs.load(Ordering::Relaxed),
        )
    }
}

/// A client handle onto a [`Workspace`]: the session API (`open_sheet`,
/// `fetch_window`, `apply_edit`, `import_rows`, `checkpoint`), keyed by
/// sheet name. Every request/response type on this surface is wire-stable
/// plain data from [`dataspread_proto`] — the TCP server exposes these
/// methods one-to-one without reshaping anything.
#[derive(Clone)]
pub struct Session {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("dir", &self.inner.dir)
            .finish()
    }
}

impl Session {
    fn shard(&self, name: &str) -> Result<Arc<Shard>, WorkspaceError> {
        let slot = self
            .inner
            .sheets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
            .ok_or_else(|| WorkspaceError::NoSuchSheet(name.to_string()))?;
        slot.wait_ready()
    }

    fn read_engine<'a>(&self, shard: &'a Shard) -> RwLockReadGuard<'a, SheetEngine> {
        shard.engine.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_engine<'a>(&self, shard: &'a Shard) -> RwLockWriteGuard<'a, SheetEngine> {
        shard.engine.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Open (or create) the named sheet. Durable workspaces store each
    /// sheet in its own subdirectory and run the engine's crash recovery
    /// here; reopening an already-open sheet is a cheap no-op.
    ///
    /// The sheet-map write lock is held only long enough to publish a
    /// placeholder slot; recovery itself (image restore + WAL replay,
    /// potentially seconds on a large sheet) runs outside it, so
    /// concurrent opens and operations on *other* sheets never stall
    /// behind this one. Concurrent opens of the *same* sheet block until
    /// the first opener finishes, then share its shard.
    pub fn open_sheet(&self, name: &str) -> Result<(), WorkspaceError> {
        if !valid_sheet_name(name) {
            return Err(WorkspaceError::BadSheetName(name.to_string()));
        }
        {
            let sheets = self.inner.sheets.read().unwrap_or_else(|e| e.into_inner());
            if let Some(slot) = sheets.get(name) {
                let slot = Arc::clone(slot);
                drop(sheets);
                return slot.wait_ready().map(|_| ());
            }
        }
        // Publish a placeholder under the (briefly held) write lock.
        let slot = {
            let mut sheets = self.inner.sheets.write().unwrap_or_else(|e| e.into_inner());
            if let Some(existing) = sheets.get(name) {
                // Raced with another opener: wait on their slot instead.
                let existing = Arc::clone(existing);
                drop(sheets);
                return existing.wait_ready().map(|_| ());
            }
            let slot = Arc::new(SheetSlot::building());
            sheets.insert(name.to_string(), Arc::clone(&slot));
            slot
        };
        // Recover outside every workspace-level lock.
        match self.build_shard(name) {
            Ok(shard) => {
                slot.publish(SlotState::Ready(shard));
                Ok(())
            }
            Err(e) => {
                // Unlink the failed slot first so a retry can start
                // fresh, then wake waiters with the error.
                let mut sheets = self.inner.sheets.write().unwrap_or_else(|e| e.into_inner());
                if sheets
                    .get(name)
                    .is_some_and(|current| Arc::ptr_eq(current, &slot))
                {
                    sheets.remove(name);
                }
                drop(sheets);
                slot.publish(SlotState::Failed(e.clone()));
                Err(e)
            }
        }
    }

    /// Engine construction + recovery for one sheet (no workspace locks
    /// held).
    fn build_shard(&self, name: &str) -> Result<Arc<Shard>, WorkspaceError> {
        if let Some((stall_name, dur)) = &self.inner.config.open_stall_for_tests {
            if stall_name == name {
                std::thread::sleep(*dur);
            }
        }
        let mut engine = match &self.inner.dir {
            Some(dir) => match &self.inner.config.storage_fs {
                Some(fs) => SheetEngine::open_on(Arc::clone(fs), dir.join(name))?,
                None => SheetEngine::open(dir.join(name))?,
            },
            None => SheetEngine::new(),
        };
        if let Some(ops) = self.inner.config.auto_checkpoint_ops {
            engine.set_auto_checkpoint(Some(ops));
        }
        if let Some(threads) = self.inner.config.recompute_threads {
            engine.set_recompute_threads(threads);
        }
        engine.set_obs(EngineObs::new(&self.inner.metrics, name));
        let wal = engine.commit_wal();
        if let Some(wal) = &wal {
            wal.set_obs(WalObs::new(&self.inner.metrics, name));
            if self.inner.config.commit_mode == CommitMode::Group {
                self.inner.committer.register(wal);
            }
        }
        Ok(Arc::new(Shard {
            name: name.to_string(),
            engine: RwLock::new(engine),
            wal,
            degraded_noted: AtomicBool::new(false),
        }))
    }

    /// Stopwatch start for an instrumented session op: bumps the op's
    /// exact counter, reads the clock only for sampled ops (see
    /// [`OpMeter`]). `None` means "record no latency for this op" —
    /// metrics disabled (no atomics at all beyond the enabled load) or
    /// the op fell outside the sample.
    fn op_timer(&self, meter: &OpMeter) -> Option<Instant> {
        if !self.inner.metrics.enabled() {
            return None;
        }
        let n = meter.ops.inc_get();
        ((n - 1) & meter.mask == 0).then(Instant::now)
    }

    /// Record one finished *sampled* session op: latency histogram plus
    /// the slow-op ring (only ops over the registry threshold are
    /// ring-buffered).
    fn note_op(
        &self,
        t0: Option<Instant>,
        meter: &OpMeter,
        sheet: &str,
        op: &'static str,
        ticket: u64,
        outcome: &str,
    ) {
        let Some(t0) = t0 else { return };
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        meter.hist.record_ns(ns);
        self.inner.metrics.note_op(sheet, op, ns, ticket, outcome);
    }

    /// Ring-buffer the sheet's healthy→degraded transition, exactly once.
    fn note_degraded(&self, shard: &Shard, cause: &str) {
        if shard.degraded_noted.swap(true, Ordering::Relaxed) {
            return;
        }
        self.inner.metrics.push_event(Event {
            ts_ms: now_ms(),
            kind: "degraded".to_string(),
            sheet: shard.name.clone(),
            op: String::new(),
            duration_ns: 0,
            ticket: 0,
            outcome: cause.to_string(),
        });
    }

    /// Inspect an op result: degrade-class errors mark the shard's
    /// transition; the returned string labels the outcome for the ring.
    fn outcome_of<T>(&self, shard: &Shard, res: &Result<T, WorkspaceError>) -> &'static str {
        match res {
            Ok(_) => "ok",
            Err(WorkspaceError::Degraded(cause)) | Err(WorkspaceError::StorageFailed(cause)) => {
                self.note_degraded(shard, cause);
                "storage_failed"
            }
            Err(_) => "err",
        }
    }

    /// Fetch the positional window `rect` of `sheet` — the scrolling /
    /// rendering read path. Takes the sheet's *shared* lock: any number of
    /// sessions fetch windows of the same sheet concurrently, and windows
    /// of different sheets never touch the same lock at all.
    ///
    /// Returns a compact [`WindowPatch`] — typed value runs plus sparse
    /// formula/error overlays — instead of one `Cell` clone per filled
    /// cell. The patch is the wire format: the TCP server frames it
    /// as-is.
    pub fn fetch_window(&self, sheet: &str, rect: Rect) -> Result<WindowPatch, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let t0 = self.op_timer(&self.inner.op_hists.fetch_window);
        let patch = {
            let engine = self.read_engine(&shard);
            // Columnar fast path: when a columnar region serves the whole
            // window, its row-major RLE scan drives a streaming
            // PatchBuilder — no `(CellAddr, Cell)` materialization, no
            // re-sort. Produces a patch identical to `from_cells` on the
            // same window.
            let mut builder = PatchBuilder::new(rect);
            let columnar =
                engine
                    .storage()
                    .scan_columnar_window(rect, |_, _, v, formula| match v {
                        ScanValue::Empty => builder.push_empty(formula),
                        ScanValue::Number(n) => builder.push_number(n, formula),
                        ScanValue::Bool(b) => builder.push_bool(b, formula),
                        ScanValue::Text(s) => builder.push_text(s, formula),
                        ScanValue::Error(e) => builder.push_error(e, formula),
                    });
            if columnar {
                builder.finish()
            } else {
                WindowPatch::from_cells(rect, engine.get_cells(rect))
            }
        };
        self.note_op(
            t0,
            &self.inner.op_hists.fetch_window,
            sheet,
            "fetch_window",
            0,
            "ok",
        );
        Ok(patch)
    }

    /// A single cell's computed value (shared lock, like `fetch_window`).
    pub fn value(&self, sheet: &str, addr: CellAddr) -> Result<CellValue, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let value = self.read_engine(&shard).value(addr);
        Ok(value)
    }

    /// Apply one edit to `sheet` and return once it is committed.
    ///
    /// The edit itself serializes under the sheet's write lock (one writer
    /// per sheet; writers on other sheets run in parallel). Commit
    /// acknowledgement happens *after* the lock is released: per-op mode
    /// fsyncs inline, group mode enqueues the sheet's WAL with the
    /// committer and blocks on the edit's ticket — so the fsync wait never
    /// blocks the sheet's readers or the next writer.
    pub fn apply_edit(&self, sheet: &str, edit: Edit) -> Result<EditReceipt, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let t0 = self.op_timer(&self.inner.op_hists.apply_edit);
        let res = self
            .apply_under_lock(&shard, &edit)
            .and_then(|ticket| self.commit(&shard, ticket));
        let outcome = self.outcome_of(&shard, &res);
        let ticket = res.as_ref().map_or(0, |r| r.ticket);
        self.note_op(
            t0,
            &self.inner.op_hists.apply_edit,
            sheet,
            "apply_edit",
            ticket,
            outcome,
        );
        res
    }

    /// Refuse durable mutations on a sheet whose store suffered a
    /// permanent storage failure. The check runs *before* the engine
    /// mutates memory, so a degraded sheet's in-memory state stays
    /// exactly what was last acknowledged — reads keep serving it.
    fn check_writable(engine: &SheetEngine) -> Result<(), WorkspaceError> {
        match engine.storage_failed() {
            Some(cause) => Err(WorkspaceError::Degraded(cause)),
            None => Ok(()),
        }
    }

    /// Apply `edit` under the sheet's write lock; returns its ticket.
    fn apply_under_lock(&self, shard: &Shard, edit: &Edit) -> Result<u64, WorkspaceError> {
        let mut engine = self.write_engine(shard);
        Self::check_writable(&engine)?;
        match edit {
            Edit::Set { row, col, input } => {
                engine.update_cell(CellAddr::new(*row, *col), input)?
            }
            Edit::InsertRows { at, n } => engine.insert_rows(*at, *n)?,
            Edit::DeleteRows { at, n } => engine.delete_rows(*at, *n)?,
            Edit::InsertCols { at, n } => engine.insert_cols(*at, *n)?,
            Edit::DeleteCols { at, n } => engine.delete_cols(*at, *n)?,
        }
        Ok(engine.last_commit_ticket())
    }

    /// [`Session::apply_edit`] without the commit wait: the edit is
    /// applied and logged, and the returned receipt's ticket can be
    /// awaited later with [`Session::await_commit`] — the pipelining
    /// building block for RPC clients that keep a small window of edits
    /// in flight (the group committer then folds a whole window into one
    /// fsync).
    ///
    /// Commit-mode semantics are preserved: per-op workspaces fsync the
    /// edit here (staging changes nothing for them — every op still pays
    /// its own fsync), group workspaces return immediately with
    /// `durable: false`.
    pub fn stage_edit(&self, sheet: &str, edit: Edit) -> Result<EditReceipt, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let t0 = self.op_timer(&self.inner.op_hists.stage_edit);
        let res = self.stage_edit_inner(&shard, &edit);
        let outcome = self.outcome_of(&shard, &res);
        let ticket = res.as_ref().map_or(0, |r| r.ticket);
        self.note_op(
            t0,
            &self.inner.op_hists.stage_edit,
            sheet,
            "stage_edit",
            ticket,
            outcome,
        );
        res
    }

    fn stage_edit_inner(&self, shard: &Shard, edit: &Edit) -> Result<EditReceipt, WorkspaceError> {
        let ticket = self.apply_under_lock(shard, edit)?;
        let Some(wal) = &shard.wal else {
            return Ok(EditReceipt {
                ticket: 0,
                durable: false,
            });
        };
        match self.inner.config.commit_mode {
            CommitMode::PerOp => {
                wal.sync_serial().map_err(promote_storage)?;
                self.inner.inline_syncs.fetch_add(1, Ordering::Relaxed);
                Ok(EditReceipt {
                    ticket,
                    durable: true,
                })
            }
            CommitMode::Group => {
                self.inner.committer.nudge(wal);
                Ok(EditReceipt {
                    ticket,
                    durable: false,
                })
            }
        }
    }

    /// Block until `ticket` (from [`Session::stage_edit`]) is
    /// crash-durable. Tickets are covered in order, so awaiting the last
    /// ticket of a staged window commits the whole window.
    pub fn await_commit(&self, sheet: &str, ticket: u64) -> Result<(), WorkspaceError> {
        let shard = self.shard(sheet)?;
        let t0 = self.op_timer(&self.inner.op_hists.await_commit);
        let res = match (&shard.wal, self.inner.config.commit_mode) {
            (None, _) => Ok(()),                    // in-memory: nothing to await
            (Some(_), CommitMode::PerOp) => Ok(()), // staged ops were fsynced inline
            (Some(wal), CommitMode::Group) => {
                self.inner.committer.nudge(wal);
                wal.commit_wait(ticket, self.inner.commit_spin)
                    .map_err(promote_storage)
            }
        };
        let outcome = self.outcome_of(&shard, &res);
        self.note_op(
            t0,
            &self.inner.op_hists.await_commit,
            sheet,
            "await_commit",
            ticket,
            outcome,
        );
        res
    }

    /// Highest commit ticket known crash-durable on `sheet` (0 on
    /// in-memory workspaces). `stage_edit` tickets at or below this value
    /// no longer need an `await_commit` — the admission-control signal
    /// the server's per-connection backpressure prunes its in-flight
    /// window with.
    pub fn durable_ticket(&self, sheet: &str) -> Result<u64, WorkspaceError> {
        let shard = self.shard(sheet)?;
        Ok(shard.wal.as_ref().map_or(0, |w| w.durable_seq()))
    }

    /// The restart-reconciliation pair `(incarnation, horizon)` for
    /// `sheet`, both frozen when its durable directory was last opened
    /// (`(0, 0)` on in-memory workspaces). A reconnecting client compares
    /// the incarnation against the value it remembered: unchanged means
    /// the server never restarted (nothing staged was lost; re-staging
    /// would double-apply), changed means it must re-stage exactly its
    /// staged edits with tickets above the horizon.
    pub fn recovery_horizon(&self, sheet: &str) -> Result<(u64, u64), WorkspaceError> {
        let shard = self.shard(sheet)?;
        let horizon = self.read_engine(&shard).recovery_horizon();
        Ok(horizon)
    }

    /// `Some(cause)` when `sheet` has degraded to read-only after a
    /// permanent storage failure (`None` = healthy). Degraded sheets keep
    /// serving reads from memory; edits fail with
    /// [`WorkspaceError::Degraded`] until the workspace is reopened.
    pub fn storage_failed(&self, sheet: &str) -> Result<Option<String>, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let failed = self.read_engine(&shard).storage_failed();
        Ok(failed)
    }

    /// Bulk-import rows of values at `top_left` (one logical op, one WAL
    /// record), committed like any edit.
    pub fn import_rows(
        &self,
        sheet: &str,
        top_left: CellAddr,
        width: u32,
        rows: Vec<Vec<CellValue>>,
    ) -> Result<Rect, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let res = (|| {
            let (rect, ticket) = {
                let mut engine = self.write_engine(&shard);
                Self::check_writable(&engine)?;
                let rect = engine.import_rows(top_left, width, rows)?;
                (rect, engine.last_commit_ticket())
            };
            self.commit(&shard, ticket)?;
            Ok(rect)
        })();
        self.outcome_of(&shard, &res);
        res
    }

    /// Fold `sheet`'s WAL into its checkpoint image (write lock; readers
    /// of other sheets are unaffected). `Ok(None)` on in-memory
    /// workspaces.
    pub fn checkpoint(&self, sheet: &str) -> Result<Option<CheckpointReport>, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let res = {
            let mut engine = self.write_engine(&shard);
            engine.checkpoint().map_err(WorkspaceError::from)
        };
        self.outcome_of(&shard, &res);
        res
    }

    /// Block until the op behind `ticket` is crash-durable.
    fn commit(&self, shard: &Shard, ticket: u64) -> Result<EditReceipt, WorkspaceError> {
        let Some(wal) = &shard.wal else {
            return Ok(EditReceipt {
                ticket: 0,
                durable: false,
            });
        };
        match self.inner.config.commit_mode {
            CommitMode::PerOp => {
                // Unconditional fsync *under the append lock* — the
                // faithful legacy baseline: the single-threaded engine
                // held `&mut self` across `save()`, fully serializing
                // apply+fsync. Deliberately not routed through the group
                // fsync-point (which would coalesce concurrent per-op
                // fsyncs and quietly turn the baseline into group
                // commit).
                wal.sync_serial().map_err(promote_storage)?;
                self.inner.inline_syncs.fetch_add(1, Ordering::Relaxed);
            }
            CommitMode::Group => {
                // `commit_wait` spins briefly then *helps* with the fsync
                // when the fsync-point is free — small commit windows stay
                // fsync-bound instead of futex-bound, while wide windows
                // still batch through the committer thread.
                self.inner.committer.nudge(wal);
                wal.commit_wait(ticket, self.inner.commit_spin)
                    .map_err(promote_storage)?;
            }
        }
        Ok(EditReceipt {
            ticket,
            durable: true,
        })
    }

    /// In-memory copy of a sheet (tests, exports). Shared lock.
    pub fn snapshot(&self, sheet: &str) -> Result<SparseSheet, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let snapshot = self.read_engine(&shard).snapshot();
        Ok(snapshot)
    }

    /// Counters and health for one sheet (shared lock). The returned
    /// [`SheetStats`] is the wire payload itself — the TCP server frames
    /// it unchanged.
    pub fn stats(&self, sheet: &str) -> Result<SheetStats, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let engine = self.read_engine(&shard);
        let mut s = SheetStats::default();
        s.filled_cells = engine.storage().filled_count();
        s.regions = engine.storage().region_count() as u64;
        (s.cache_hits, s.cache_misses) = engine.cache_stats();
        if let Some(p) = engine.persistence_stats() {
            s.persistent = true;
            s.wal_bytes = p.wal_bytes;
            s.wal_segments = p.wal_segments;
            s.ops_since_checkpoint = p.ops_since_checkpoint;
            s.checkpoints = p.checkpoints;
            s.image_pages = p.image_pages;
            s.image_regions = p.image_regions;
            s.resident_bytes = p.resident_bytes;
            s.pager_hits = p.pager.hits;
            s.pager_misses = p.pager.misses;
            s.pager_evictions = p.pager.evictions;
            s.pager_pages_read = p.pager.pages_read;
            s.pager_pages_written = p.pager.pages_written;
        }
        if let Some((cause, since_ms)) = engine.storage_failed_info() {
            s.health = Health::Degraded;
            s.degraded_cause = Some(cause);
            s.degraded_since_ms = (since_ms > 0).then_some(since_ms);
        }
        Ok(s)
    }

    /// Every `Ready` shard by name, sorted — skips sheets still
    /// recovering (their metrics land once they publish).
    fn ready_shards(&self) -> Vec<(String, Arc<Shard>)> {
        let slots: Vec<(String, Arc<SheetSlot>)> = self
            .inner
            .sheets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(name, slot)| (name.clone(), Arc::clone(slot)))
            .collect();
        let mut shards: Vec<(String, Arc<Shard>)> = slots
            .into_iter()
            .filter_map(|(name, slot)| {
                let st = slot.state.lock().unwrap_or_else(|e| e.into_inner());
                match &*st {
                    SlotState::Ready(shard) => Some((name, Arc::clone(shard))),
                    _ => None,
                }
            })
            .collect();
        shards.sort_by(|a, b| a.0.cmp(&b.0));
        shards
    }

    /// A whole-workspace metrics snapshot: every counter, gauge and
    /// histogram recorded so far, the slow-op/event ring, and per-sheet
    /// health. Point-in-time gauges (formula-cache hit counts, pager
    /// counters, resident bytes by region layout, WAL ops-per-fsync) are
    /// sampled here, so the snapshot is self-contained.
    ///
    /// This is the payload `Request::Metrics` serves; the text exposition
    /// (`RegistrySnapshot::render_text`) renders it for scrapes.
    pub fn metrics(&self) -> RegistrySnapshot {
        let shards = self.ready_shards();
        let registry = &self.inner.metrics;
        let mut sheets: Vec<SheetHealth> = Vec::with_capacity(shards.len());
        let mut total_appends: u64 = 0;
        let mut total_fsyncs: u64 = 0;
        for (name, shard) in &shards {
            let labels: &[(&str, &str)] = &[("sheet", name)];
            let engine = self.read_engine(shard);
            let (hits, misses) = engine.cache_stats();
            registry
                .gauge("formula_cache_hits", labels)
                .set(i64::try_from(hits).unwrap_or(i64::MAX));
            registry
                .gauge("formula_cache_misses", labels)
                .set(i64::try_from(misses).unwrap_or(i64::MAX));
            if let Some(p) = engine.persistence_stats() {
                for (key, v) in [
                    ("pager_hits", p.pager.hits),
                    ("pager_misses", p.pager.misses),
                    ("pager_evictions", p.pager.evictions),
                    ("pager_pages_read", p.pager.pages_read),
                    ("pager_pages_written", p.pager.pages_written),
                    ("wal_bytes", p.wal_bytes),
                    ("ops_since_checkpoint", p.ops_since_checkpoint),
                ] {
                    registry
                        .gauge(key, labels)
                        .set(i64::try_from(v).unwrap_or(i64::MAX));
                }
            }
            for (rect, kind, bytes) in engine.storage().region_resident_bytes() {
                let kind = kind.to_string();
                let region = format!("r{}c{}", rect.r1, rect.c1);
                registry
                    .gauge(
                        "region_resident_bytes",
                        &[("kind", &kind), ("region", &region), ("sheet", name)],
                    )
                    .set(i64::try_from(bytes).unwrap_or(i64::MAX));
            }
            let mut health = SheetHealth {
                sheet: name.clone(),
                health: Health::Healthy,
                cause: None,
                since_ms: None,
            };
            if let Some((cause, since_ms)) = engine.storage_failed_info() {
                health.health = Health::Degraded;
                health.cause = Some(cause);
                health.since_ms = (since_ms > 0).then_some(since_ms);
            }
            drop(engine);
            sheets.push(health);
            if shard.wal.is_some() {
                let wal_obs = WalObs::new(registry, name);
                total_appends += wal_obs.appends.get();
                total_fsyncs += wal_obs.fsyncs.get();
            }
        }
        if let Some(per_fsync) = total_appends.checked_div(total_fsyncs) {
            self.inner
                .ops_per_fsync
                .set(i64::try_from(per_fsync).unwrap_or(i64::MAX));
        }
        let mut snap = registry.snapshot();
        snap.sheets = sheets;
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dataspread-workspace-{name}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn set(row: u32, col: u32, input: &str) -> Edit {
        Edit::Set {
            row,
            col,
            input: input.to_string(),
        }
    }

    #[test]
    fn sessions_are_send_and_cheap() {
        fn assert_send<T: Send + Clone>() {}
        assert_send::<Session>();
    }

    #[test]
    fn in_memory_roundtrip() {
        let ws = Workspace::in_memory();
        let s = ws.session();
        s.open_sheet("alpha").unwrap();
        let r = s.apply_edit("alpha", set(0, 0, "41")).unwrap();
        assert!(!r.durable);
        s.apply_edit("alpha", set(0, 1, "=A1+1")).unwrap();
        assert_eq!(
            s.value("alpha", CellAddr::new(0, 1)).unwrap(),
            CellValue::Number(42.0)
        );
        let window = s.fetch_window("alpha", Rect::new(0, 0, 10, 10)).unwrap();
        assert_eq!(window.filled_count(), 2);
        // The patch carries the formula overlay alongside the computed
        // value.
        let cell = window.cell_at(CellAddr::new(0, 1)).unwrap();
        assert_eq!(cell.value, CellValue::Number(42.0));
        assert_eq!(cell.formula.as_deref(), Some("A1+1"));
        assert!(s.checkpoint("alpha").unwrap().is_none());
        assert_eq!(s.durable_ticket("alpha").unwrap(), 0);
    }

    #[test]
    fn unknown_sheet_and_bad_names_are_rejected() {
        let ws = Workspace::in_memory();
        let s = ws.session();
        assert!(matches!(
            s.fetch_window("nope", Rect::new(0, 0, 1, 1)),
            Err(WorkspaceError::NoSuchSheet(_))
        ));
        for bad in ["", "a/b", "..", "a b", "x\u{0}"] {
            assert!(
                matches!(s.open_sheet(bad), Err(WorkspaceError::BadSheetName(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn durable_group_commit_roundtrip() {
        let dir = temp_dir("group-roundtrip");
        {
            let ws = Workspace::open(&dir).unwrap();
            let s = ws.session();
            s.open_sheet("ledger").unwrap();
            let r1 = s.apply_edit("ledger", set(0, 0, "100")).unwrap();
            let r2 = s.apply_edit("ledger", set(1, 0, "=A1*2")).unwrap();
            assert!(r1.durable && r2.durable);
            assert!(r2.ticket > r1.ticket, "tickets order the edit history");
            assert!(
                s.durable_ticket("ledger").unwrap() >= r2.ticket,
                "acknowledged edits are at or below the durable horizon"
            );
        }
        // Reopen: both committed edits must recover (no explicit save —
        // the group commit itself was the fsync-point).
        let ws = Workspace::open(&dir).unwrap();
        let s = ws.session();
        s.open_sheet("ledger").unwrap();
        assert_eq!(
            s.value("ledger", CellAddr::new(1, 0)).unwrap(),
            CellValue::Number(200.0)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_op_mode_counts_inline_syncs() {
        let dir = temp_dir("per-op");
        let ws = Workspace::open_with(
            &dir,
            WorkspaceConfig {
                commit_mode: CommitMode::PerOp,
                ..Default::default()
            },
        )
        .unwrap();
        let s = ws.session();
        s.open_sheet("x").unwrap();
        // Baseline after open (the open-time checkpoint itself fsyncs
        // once through the shared fsync-point).
        let (_, group_fsyncs_at_open, _) = ws.commit_stats();
        for i in 0..5u32 {
            s.apply_edit("x", set(i, 0, "1")).unwrap();
        }
        let (_, group_fsyncs, inline) = ws.commit_stats();
        assert_eq!(inline, 5, "per-op mode pays one fsync per edit");
        assert_eq!(
            group_fsyncs, group_fsyncs_at_open,
            "no group-commit fsyncs in per-op mode"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn staged_edits_commit_on_await() {
        let dir = temp_dir("stage-await");
        {
            let ws = Workspace::open(&dir).unwrap();
            let s = ws.session();
            s.open_sheet("p").unwrap();
            // Stage a window of edits; none is individually awaited.
            let mut last = 0;
            for i in 0..6u32 {
                let r = s.stage_edit("p", set(i, 0, &i.to_string())).unwrap();
                assert!(!r.durable, "group staging must not block on fsync");
                assert!(r.ticket > last);
                last = r.ticket;
            }
            // Awaiting the last ticket commits the whole window.
            s.await_commit("p", last).unwrap();
            assert!(s.durable_ticket("p").unwrap() >= last);
        }
        let ws = Workspace::open(&dir).unwrap();
        let s = ws.session();
        s.open_sheet("p").unwrap();
        for i in 0..6u32 {
            assert_eq!(
                s.value("p", CellAddr::new(i, 0)).unwrap(),
                CellValue::Number(i as f64),
                "staged edit {i} must have committed"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_op_staging_is_durable_immediately() {
        let dir = temp_dir("stage-per-op");
        let ws = Workspace::open_with(
            &dir,
            WorkspaceConfig {
                commit_mode: CommitMode::PerOp,
                ..Default::default()
            },
        )
        .unwrap();
        let s = ws.session();
        s.open_sheet("p").unwrap();
        let r = s.stage_edit("p", set(0, 0, "9")).unwrap();
        assert!(r.durable, "per-op mode fsyncs staged ops inline");
        s.await_commit("p", r.ticket).unwrap(); // no-op, must not block
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sheets_are_independent() {
        let ws = Workspace::in_memory();
        let s = ws.session();
        s.open_sheet("a").unwrap();
        s.open_sheet("b").unwrap();
        s.apply_edit("a", set(0, 0, "1")).unwrap();
        s.apply_edit("b", set(0, 0, "2")).unwrap();
        assert_eq!(
            s.value("a", CellAddr::new(0, 0)).unwrap(),
            CellValue::Number(1.0)
        );
        assert_eq!(
            s.value("b", CellAddr::new(0, 0)).unwrap(),
            CellValue::Number(2.0)
        );
        assert_eq!(ws.sheet_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn import_rows_commits_and_serves_windows() {
        let dir = temp_dir("import");
        let ws = Workspace::open(&dir).unwrap();
        let s = ws.session();
        s.open_sheet("data").unwrap();
        let rect = s
            .import_rows(
                "data",
                CellAddr::new(2, 1),
                3,
                (0..4)
                    .map(|r| {
                        (0..3)
                            .map(|c| CellValue::Number((r * 3 + c) as f64))
                            .collect()
                    })
                    .collect(),
            )
            .unwrap();
        assert_eq!(rect, Rect::new(2, 1, 5, 3));
        let window = s.fetch_window("data", rect).unwrap();
        assert_eq!(window.filled_count(), 12);
        assert_eq!(
            window.run_count(),
            1,
            "a dense numeric import is one typed run"
        );
        assert_eq!(s.stats("data").unwrap().regions, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_snapshot_captures_session_and_wal_activity() {
        let dir = temp_dir("metrics-snapshot");
        let ws = Workspace::open(&dir).unwrap();
        let s = ws.session();
        s.open_sheet("m").unwrap();
        for i in 0..4u32 {
            s.apply_edit("m", set(i, 0, "1")).unwrap();
        }
        s.fetch_window("m", Rect::new(0, 0, 3, 3)).unwrap();
        let snap = s.metrics();
        assert_eq!(
            snap.counter("session_ops{op=\"apply_edit\"}").unwrap(),
            4,
            "the op counter is exact"
        );
        let apply = snap.histogram("session_op_ns{op=\"apply_edit\"}").unwrap();
        assert_eq!(
            apply.count(),
            1,
            "hot ops sample latency 1-in-128, first op always"
        );
        assert!(apply.p99() > 0);
        assert_eq!(snap.counter("session_ops{op=\"fetch_window\"}").unwrap(), 1);
        assert_eq!(
            snap.histogram("session_op_ns{op=\"fetch_window\"}")
                .unwrap()
                .count(),
            1,
            "fetch_window times every call"
        );
        assert!(snap.counter("wal_fsyncs{sheet=\"m\"}").unwrap() > 0);
        assert!(
            snap.histogram("wal_fsync_ns{sheet=\"m\"}").unwrap().count() > 0,
            "fsync latency must be sampled"
        );
        assert!(snap.counter("wal_appends{sheet=\"m\"}").unwrap() >= 4);
        assert_eq!(
            snap.sheet_health("m").unwrap().health,
            Health::Healthy,
            "healthy sheet reports healthy"
        );
        let st = s.stats("m").unwrap();
        assert!(st.persistent);
        assert_eq!(st.health, Health::Healthy);
        assert!(st.degraded_cause.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let dir = temp_dir("metrics-off");
        let ws = Workspace::open_with(
            &dir,
            WorkspaceConfig {
                metrics_enabled: false,
                ..Default::default()
            },
        )
        .unwrap();
        let s = ws.session();
        s.open_sheet("q").unwrap();
        s.apply_edit("q", set(0, 0, "5")).unwrap();
        let snap = s.metrics();
        assert_eq!(
            snap.counter("session_ops{op=\"apply_edit\"}").unwrap(),
            0,
            "disabled registry must not count ops"
        );
        assert_eq!(
            snap.histogram("session_op_ns{op=\"apply_edit\"}")
                .unwrap()
                .count(),
            0,
            "disabled registry must not record latencies"
        );
        assert!(snap.events.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn slow_ops_land_in_the_event_ring() {
        let dir = temp_dir("slow-ops");
        let ws = Workspace::open_with(
            &dir,
            WorkspaceConfig {
                slow_op_ns: Some(0), // every op is "slow"
                ..Default::default()
            },
        )
        .unwrap();
        let s = ws.session();
        s.open_sheet("r").unwrap();
        s.apply_edit("r", set(0, 0, "1")).unwrap();
        let snap = s.metrics();
        assert!(
            snap.events
                .iter()
                .any(|e| e.kind == "slow_op" && e.sheet == "r" && e.op == "apply_edit"),
            "threshold 0 must ring-buffer the op: {:?}",
            snap.events
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_codes_roundtrip_the_wire() {
        let errors: Vec<WorkspaceError> = vec![
            WorkspaceError::NoSuchSheet("ledger".into()),
            WorkspaceError::BadSheetName("a/b".into()),
            WorkspaceError::Busy("32 staged edits in flight".into()),
            WorkspaceError::Protocol("bad tag 77".into()),
            WorkspaceError::Io("connection reset".into()),
            WorkspaceError::Engine(EngineError::Unsupported("structural edit".into())),
            WorkspaceError::Engine(EngineError::BadLink("overlap".into())),
            WorkspaceError::Store(StoreError::NoSuchTable("t".into())),
            WorkspaceError::Store(StoreError::BadTupleId),
            WorkspaceError::Store(StoreError::TupleTooLarge(9000)),
            WorkspaceError::Store(StoreError::Corrupt("truncated record".into())),
            WorkspaceError::Store(StoreError::Io("disk full".into())),
            WorkspaceError::Store(StoreError::StorageFailed("fsync: EIO".into())),
            WorkspaceError::Degraded("fsync: EIO".into()),
            WorkspaceError::StorageFailed("injected ENOSPC".into()),
            WorkspaceError::Remote {
                code: 0x7777,
                detail: "from the future".into(),
            },
        ];
        for e in &errors {
            let wire = e.to_wire();
            let back = WorkspaceError::from_wire(wire.code, wire.detail.clone());
            assert_eq!(
                back.code(),
                e.code(),
                "code must survive the round trip: {e:?}"
            );
            assert_eq!(
                back.wire_detail(),
                e.wire_detail(),
                "detail must survive the round trip: {e:?}"
            );
            assert_eq!(&back, e, "structural variants reconstruct exactly: {e:?}");
        }
        // Distinct variants get distinct codes.
        let mut codes: Vec<u16> = errors.iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len());
    }

    #[test]
    fn parser_level_errors_keep_their_code_class() {
        // A formula parse error can't reconstruct its typed payload
        // client-side, but its code class must survive.
        let ws = Workspace::in_memory();
        let s = ws.session();
        s.open_sheet("f").unwrap();
        let err = s.apply_edit("f", set(0, 0, "=SUM((")).unwrap_err();
        let wire = err.to_wire();
        assert_eq!(wire.code, dataspread_proto::codes::ENGINE_FORMULA);
        let back = WorkspaceError::from_wire(wire.code, wire.detail);
        assert_eq!(back.code(), dataspread_proto::codes::ENGINE_FORMULA);
        assert!(matches!(back, WorkspaceError::Remote { .. }));
    }

    #[test]
    fn failed_open_unlinks_the_slot_for_retry() {
        let dir = temp_dir("failed-open");
        let ws = Workspace::open(&dir).unwrap();
        let s = ws.session();
        // Make the sheet's directory path unusable: a *file* where the
        // sheet directory must go.
        std::fs::write(dir.join("jam"), b"not a directory").unwrap();
        assert!(s.open_sheet("jam").is_err());
        assert!(
            ws.sheet_names().is_empty(),
            "failed open must not leave a slot behind"
        );
        // Clearing the obstruction lets a retry succeed.
        std::fs::remove_file(dir.join("jam")).unwrap();
        s.open_sheet("jam").unwrap();
        s.apply_edit("jam", set(0, 0, "1")).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn slow_recovery_does_not_stall_other_sheets() {
        let dir = temp_dir("slow-open");
        let stall = Duration::from_millis(400);
        let ws = Workspace::open_with(
            &dir,
            WorkspaceConfig {
                open_stall_for_tests: Some(("glacier".to_string(), stall)),
                ..Default::default()
            },
        )
        .unwrap();
        let slow = ws.session();
        let fast = ws.session();
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            let slow_done = scope.spawn(move || {
                slow.open_sheet("glacier").unwrap();
                Instant::now()
            });
            // Give the slow opener time to publish its placeholder and
            // enter recovery.
            std::thread::sleep(Duration::from_millis(50));
            let fast_done = scope.spawn(move || {
                let mut max_op = Duration::ZERO;
                for i in 0..20u32 {
                    let t = Instant::now();
                    fast.open_sheet("quick").unwrap();
                    fast.apply_edit("quick", set(i, 0, "1")).unwrap();
                    max_op = max_op.max(t.elapsed());
                }
                (Instant::now(), max_op)
            });
            let (fast_end, max_op) = fast_done.join().unwrap();
            let slow_end = slow_done.join().unwrap();
            assert!(
                fast_end < slow_end,
                "operations on another sheet finished before the stalled recovery"
            );
            assert!(
                max_op < stall / 4,
                "no single op on another sheet may wait out the recovery \
                 (max {max_op:?} vs stall {stall:?})"
            );
        });
        assert!(t0.elapsed() >= stall, "the stall hook must have engaged");
        // The stalled sheet is fully usable afterwards.
        let s = ws.session();
        s.apply_edit("glacier", set(0, 0, "5")).unwrap();
        assert_eq!(
            s.value("glacier", CellAddr::new(0, 0)).unwrap(),
            CellValue::Number(5.0)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_opens_of_a_stalled_sheet_share_one_shard() {
        let dir = temp_dir("shared-open");
        let ws = Workspace::open_with(
            &dir,
            WorkspaceConfig {
                open_stall_for_tests: Some(("shared".to_string(), Duration::from_millis(150))),
                ..Default::default()
            },
        )
        .unwrap();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = ws.session();
                scope.spawn(move || {
                    s.open_sheet("shared").unwrap();
                    s.apply_edit("shared", set(0, 0, "1")).unwrap();
                });
            }
        });
        let s = ws.session();
        assert_eq!(
            s.value("shared", CellAddr::new(0, 0)).unwrap(),
            CellValue::Number(1.0)
        );
        assert_eq!(ws.sheet_names(), vec!["shared".to_string()]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
