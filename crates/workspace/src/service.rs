//! The workspace service proper: named sheet shards behind per-sheet
//! locks, and the name-keyed session API served over them.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use dataspread_engine::{CheckpointReport, EngineError, PersistenceStats, SheetEngine};
use dataspread_grid::{Cell, CellAddr, CellValue, Rect, SparseSheet};
use dataspread_relstore::{SharedWal, StoreError};

use crate::committer::GroupCommitter;

/// How a durable workspace acknowledges committed edits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommitMode {
    /// Every edit pays its own fsync before `apply_edit` returns — the
    /// safe-but-slow baseline (one fsync per op per writer).
    PerOp,
    /// Edits append and block on their commit ticket; the dedicated
    /// committer thread batches all outstanding records into one fsync
    /// per sheet per round. Same durability contract, ~1 fsync per batch.
    #[default]
    Group,
}

/// Workspace construction knobs.
#[derive(Debug, Clone, Default)]
pub struct WorkspaceConfig {
    pub commit_mode: CommitMode,
    /// Auto-checkpoint every N logged ops on each sheet (engine default:
    /// disabled).
    pub auto_checkpoint_ops: Option<u64>,
}

/// Errors surfaced by the session API.
#[derive(Debug)]
pub enum WorkspaceError {
    /// The named sheet was never opened in this workspace.
    NoSuchSheet(String),
    /// Sheet names become directory names; only `[A-Za-z0-9_-]` survive
    /// an RPC boundary safely.
    BadSheetName(String),
    Engine(EngineError),
    Store(StoreError),
}

impl std::fmt::Display for WorkspaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkspaceError::NoSuchSheet(n) => write!(f, "no such sheet: {n}"),
            WorkspaceError::BadSheetName(n) => {
                write!(f, "bad sheet name {n:?} (use [A-Za-z0-9_-])")
            }
            WorkspaceError::Engine(e) => write!(f, "engine: {e}"),
            WorkspaceError::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for WorkspaceError {}

impl From<EngineError> for WorkspaceError {
    fn from(e: EngineError) -> Self {
        WorkspaceError::Engine(e)
    }
}

impl From<StoreError> for WorkspaceError {
    fn from(e: StoreError) -> Self {
        WorkspaceError::Store(e)
    }
}

/// One logical edit, RPC-shaped (plain data, no engine types beyond the
/// cell-value enum used by imports).
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// `updateCell(row, col, input)` — raw user input (`=…` formula,
    /// literal, `""` clear), interpreted exactly like the engine does.
    Set {
        row: u32,
        col: u32,
        input: String,
    },
    InsertRows {
        at: u32,
        n: u32,
    },
    DeleteRows {
        at: u32,
        n: u32,
    },
    InsertCols {
        at: u32,
        n: u32,
    },
    DeleteCols {
        at: u32,
        n: u32,
    },
}

/// Acknowledgement for one applied edit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditReceipt {
    /// WAL commit ticket of the logged op (0 on in-memory workspaces).
    /// Tickets increase in the order edits serialized on the sheet, so
    /// they double as the edit's position in the sheet's history.
    pub ticket: u64,
    /// Whether the edit was crash-durable when `apply_edit` returned
    /// (true for every durable workspace, both commit modes).
    pub durable: bool,
}

/// Point-in-time counters for one sheet.
#[derive(Debug, Clone)]
pub struct SheetStats {
    pub filled_cells: u64,
    pub regions: usize,
    pub persistence: Option<PersistenceStats>,
}

/// One sheet shard: the engine behind its reader-writer lock plus the
/// shared WAL handle the committer fsyncs through.
struct Shard {
    engine: RwLock<SheetEngine>,
    /// `None` for in-memory workspaces.
    wal: Option<Arc<SharedWal>>,
}

struct Inner {
    dir: Option<PathBuf>,
    config: WorkspaceConfig,
    sheets: RwLock<HashMap<String, Arc<Shard>>>,
    committer: GroupCommitter,
    /// Fsyncs issued inline by `CommitMode::PerOp` writers (the baseline
    /// counter the concurrency bench compares against committer batches).
    inline_syncs: AtomicU64,
}

/// A concurrent multi-sheet workspace. Create one, hand [`Session`]s to
/// each client thread, and let them read/write concurrently: readers of a
/// sheet share its lock, writers serialize per sheet, and sessions on
/// different sheets proceed fully in parallel.
pub struct Workspace {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Workspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workspace")
            .field("dir", &self.inner.dir)
            .field("sheets", &self.sheet_names())
            .field("mode", &self.inner.config.commit_mode)
            .finish()
    }
}

fn valid_sheet_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

impl Workspace {
    /// A volatile workspace: sheets live in memory, receipts carry no
    /// durability.
    pub fn in_memory() -> Workspace {
        Self::build(None, WorkspaceConfig::default())
    }

    /// Open (or create) a durable workspace rooted at `dir` with group
    /// commit (each sheet lives in `dir/<name>/` and recovers
    /// independently on open).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Workspace, WorkspaceError> {
        Self::open_with(dir, WorkspaceConfig::default())
    }

    /// [`Workspace::open`] with explicit configuration.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        config: WorkspaceConfig,
    ) -> Result<Workspace, WorkspaceError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(StoreError::from)?;
        Ok(Self::build(Some(dir), config))
    }

    fn build(dir: Option<PathBuf>, config: WorkspaceConfig) -> Workspace {
        Workspace {
            inner: Arc::new(Inner {
                dir,
                config,
                sheets: RwLock::new(HashMap::new()),
                committer: GroupCommitter::new(),
                inline_syncs: AtomicU64::new(0),
            }),
        }
    }

    /// A new session over this workspace. Sessions are cheap handles
    /// (`Clone + Send`) — one per client thread.
    pub fn session(&self) -> Session {
        Session {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Names of the sheets opened so far.
    pub fn sheet_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .sheets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// `(committer flush rounds, group fsyncs, inline per-op fsyncs)` —
    /// the observability the concurrency bench asserts batching with.
    /// Group fsyncs count every fsync issued through the group
    /// fsync-point, whether by the committer thread or a helping writer.
    pub fn commit_stats(&self) -> (u64, u64, u64) {
        let group_fsyncs: u64 = self
            .inner
            .sheets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .filter_map(|s| s.wal.as_ref())
            .map(|w| w.fsync_count())
            .sum();
        (
            self.inner.committer.rounds(),
            group_fsyncs,
            self.inner.inline_syncs.load(Ordering::Relaxed),
        )
    }
}

/// A client handle onto a [`Workspace`]: the session API (`open_sheet`,
/// `fetch_window`, `apply_edit`, `import_rows`, `checkpoint`), keyed by
/// sheet name.
#[derive(Clone)]
pub struct Session {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("dir", &self.inner.dir)
            .finish()
    }
}

impl Session {
    fn shard(&self, name: &str) -> Result<Arc<Shard>, WorkspaceError> {
        self.inner
            .sheets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
            .ok_or_else(|| WorkspaceError::NoSuchSheet(name.to_string()))
    }

    fn read_engine<'a>(&self, shard: &'a Shard) -> RwLockReadGuard<'a, SheetEngine> {
        shard.engine.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_engine<'a>(&self, shard: &'a Shard) -> RwLockWriteGuard<'a, SheetEngine> {
        shard.engine.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Open (or create) the named sheet. Durable workspaces store each
    /// sheet in its own subdirectory and run the engine's crash recovery
    /// here; reopening an already-open sheet is a cheap no-op.
    pub fn open_sheet(&self, name: &str) -> Result<(), WorkspaceError> {
        if !valid_sheet_name(name) {
            return Err(WorkspaceError::BadSheetName(name.to_string()));
        }
        {
            let sheets = self.inner.sheets.read().unwrap_or_else(|e| e.into_inner());
            if sheets.contains_key(name) {
                return Ok(());
            }
        }
        let mut sheets = self.inner.sheets.write().unwrap_or_else(|e| e.into_inner());
        if sheets.contains_key(name) {
            return Ok(()); // raced with another opener
        }
        let mut engine = match &self.inner.dir {
            Some(dir) => SheetEngine::open(dir.join(name))?,
            None => SheetEngine::new(),
        };
        if let Some(ops) = self.inner.config.auto_checkpoint_ops {
            engine.set_auto_checkpoint(Some(ops));
        }
        let wal = engine.commit_wal();
        if let (Some(wal), CommitMode::Group) = (&wal, self.inner.config.commit_mode) {
            self.inner.committer.register(wal);
        }
        sheets.insert(
            name.to_string(),
            Arc::new(Shard {
                engine: RwLock::new(engine),
                wal,
            }),
        );
        Ok(())
    }

    /// Fetch the positional window `rect` of `sheet` — the scrolling /
    /// rendering read path. Takes the sheet's *shared* lock: any number of
    /// sessions fetch windows of the same sheet concurrently, and windows
    /// of different sheets never touch the same lock at all.
    pub fn fetch_window(
        &self,
        sheet: &str,
        rect: Rect,
    ) -> Result<Vec<(CellAddr, Cell)>, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let engine = self.read_engine(&shard);
        Ok(engine.get_cells(rect))
    }

    /// A single cell's computed value (shared lock, like `fetch_window`).
    pub fn value(&self, sheet: &str, addr: CellAddr) -> Result<CellValue, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let value = self.read_engine(&shard).value(addr);
        Ok(value)
    }

    /// Apply one edit to `sheet` and return once it is committed.
    ///
    /// The edit itself serializes under the sheet's write lock (one writer
    /// per sheet; writers on other sheets run in parallel). Commit
    /// acknowledgement happens *after* the lock is released: per-op mode
    /// fsyncs inline, group mode enqueues the sheet's WAL with the
    /// committer and blocks on the edit's ticket — so the fsync wait never
    /// blocks the sheet's readers or the next writer.
    pub fn apply_edit(&self, sheet: &str, edit: Edit) -> Result<EditReceipt, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let ticket = self.apply_under_lock(&shard, &edit)?;
        self.commit(&shard, ticket)
    }

    /// Apply `edit` under the sheet's write lock; returns its ticket.
    fn apply_under_lock(&self, shard: &Shard, edit: &Edit) -> Result<u64, WorkspaceError> {
        let mut engine = self.write_engine(shard);
        match edit {
            Edit::Set { row, col, input } => {
                engine.update_cell(CellAddr::new(*row, *col), input)?
            }
            Edit::InsertRows { at, n } => engine.insert_rows(*at, *n)?,
            Edit::DeleteRows { at, n } => engine.delete_rows(*at, *n)?,
            Edit::InsertCols { at, n } => engine.insert_cols(*at, *n)?,
            Edit::DeleteCols { at, n } => engine.delete_cols(*at, *n)?,
        }
        Ok(engine.last_commit_ticket())
    }

    /// [`Session::apply_edit`] without the commit wait: the edit is
    /// applied and logged, and the returned receipt's ticket can be
    /// awaited later with [`Session::await_commit`] — the pipelining
    /// building block for RPC clients that keep a small window of edits
    /// in flight (the group committer then folds a whole window into one
    /// fsync).
    ///
    /// Commit-mode semantics are preserved: per-op workspaces fsync the
    /// edit here (staging changes nothing for them — every op still pays
    /// its own fsync), group workspaces return immediately with
    /// `durable: false`.
    pub fn stage_edit(&self, sheet: &str, edit: Edit) -> Result<EditReceipt, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let ticket = self.apply_under_lock(&shard, &edit)?;
        let Some(wal) = &shard.wal else {
            return Ok(EditReceipt {
                ticket: 0,
                durable: false,
            });
        };
        match self.inner.config.commit_mode {
            CommitMode::PerOp => {
                wal.with(|w| w.sync())?;
                self.inner.inline_syncs.fetch_add(1, Ordering::Relaxed);
                Ok(EditReceipt {
                    ticket,
                    durable: true,
                })
            }
            CommitMode::Group => {
                self.inner.committer.nudge(wal);
                Ok(EditReceipt {
                    ticket,
                    durable: false,
                })
            }
        }
    }

    /// Block until `ticket` (from [`Session::stage_edit`]) is
    /// crash-durable. Tickets are covered in order, so awaiting the last
    /// ticket of a staged window commits the whole window.
    pub fn await_commit(&self, sheet: &str, ticket: u64) -> Result<(), WorkspaceError> {
        let shard = self.shard(sheet)?;
        let Some(wal) = &shard.wal else {
            return Ok(()); // in-memory: nothing to await
        };
        match self.inner.config.commit_mode {
            CommitMode::PerOp => Ok(()), // staged ops were fsynced inline
            CommitMode::Group => {
                self.inner.committer.nudge(wal);
                Ok(wal.wait_durable(ticket)?)
            }
        }
    }

    /// Bulk-import rows of values at `top_left` (one logical op, one WAL
    /// record), committed like any edit.
    pub fn import_rows(
        &self,
        sheet: &str,
        top_left: CellAddr,
        width: u32,
        rows: Vec<Vec<CellValue>>,
    ) -> Result<Rect, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let (rect, ticket) = {
            let mut engine = self.write_engine(&shard);
            let rect = engine.import_rows(top_left, width, rows)?;
            (rect, engine.last_commit_ticket())
        };
        self.commit(&shard, ticket)?;
        Ok(rect)
    }

    /// Fold `sheet`'s WAL into its checkpoint image (write lock; readers
    /// of other sheets are unaffected). `Ok(None)` on in-memory
    /// workspaces.
    pub fn checkpoint(&self, sheet: &str) -> Result<Option<CheckpointReport>, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let mut engine = self.write_engine(&shard);
        Ok(engine.checkpoint()?)
    }

    /// Block until the op behind `ticket` is crash-durable.
    fn commit(&self, shard: &Shard, ticket: u64) -> Result<EditReceipt, WorkspaceError> {
        let Some(wal) = &shard.wal else {
            return Ok(EditReceipt {
                ticket: 0,
                durable: false,
            });
        };
        match self.inner.config.commit_mode {
            CommitMode::PerOp => {
                // Unconditional fsync *under the append lock* — the
                // faithful legacy baseline: the single-threaded engine
                // held `&mut self` across `save()`, fully serializing
                // apply+fsync. Deliberately not routed through the group
                // fsync-point (which would coalesce concurrent per-op
                // fsyncs and quietly turn the baseline into group
                // commit).
                wal.with(|w| w.sync())?;
                self.inner.inline_syncs.fetch_add(1, Ordering::Relaxed);
            }
            CommitMode::Group => {
                self.inner.committer.nudge(wal);
                wal.wait_durable(ticket)?;
            }
        }
        Ok(EditReceipt {
            ticket,
            durable: true,
        })
    }

    /// In-memory copy of a sheet (tests, exports). Shared lock.
    pub fn snapshot(&self, sheet: &str) -> Result<SparseSheet, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let snapshot = self.read_engine(&shard).snapshot();
        Ok(snapshot)
    }

    /// Counters for one sheet (shared lock).
    pub fn stats(&self, sheet: &str) -> Result<SheetStats, WorkspaceError> {
        let shard = self.shard(sheet)?;
        let engine = self.read_engine(&shard);
        Ok(SheetStats {
            filled_cells: engine.storage().filled_count(),
            regions: engine.storage().region_count(),
            persistence: engine.persistence_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dataspread-workspace-{name}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn set(row: u32, col: u32, input: &str) -> Edit {
        Edit::Set {
            row,
            col,
            input: input.to_string(),
        }
    }

    #[test]
    fn sessions_are_send_and_cheap() {
        fn assert_send<T: Send + Clone>() {}
        assert_send::<Session>();
    }

    #[test]
    fn in_memory_roundtrip() {
        let ws = Workspace::in_memory();
        let s = ws.session();
        s.open_sheet("alpha").unwrap();
        let r = s.apply_edit("alpha", set(0, 0, "41")).unwrap();
        assert!(!r.durable);
        s.apply_edit("alpha", set(0, 1, "=A1+1")).unwrap();
        assert_eq!(
            s.value("alpha", CellAddr::new(0, 1)).unwrap(),
            CellValue::Number(42.0)
        );
        let window = s.fetch_window("alpha", Rect::new(0, 0, 10, 10)).unwrap();
        assert_eq!(window.len(), 2);
        assert!(s.checkpoint("alpha").unwrap().is_none());
    }

    #[test]
    fn unknown_sheet_and_bad_names_are_rejected() {
        let ws = Workspace::in_memory();
        let s = ws.session();
        assert!(matches!(
            s.fetch_window("nope", Rect::new(0, 0, 1, 1)),
            Err(WorkspaceError::NoSuchSheet(_))
        ));
        for bad in ["", "a/b", "..", "a b", "x\u{0}"] {
            assert!(
                matches!(s.open_sheet(bad), Err(WorkspaceError::BadSheetName(_))),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn durable_group_commit_roundtrip() {
        let dir = temp_dir("group-roundtrip");
        {
            let ws = Workspace::open(&dir).unwrap();
            let s = ws.session();
            s.open_sheet("ledger").unwrap();
            let r1 = s.apply_edit("ledger", set(0, 0, "100")).unwrap();
            let r2 = s.apply_edit("ledger", set(1, 0, "=A1*2")).unwrap();
            assert!(r1.durable && r2.durable);
            assert!(r2.ticket > r1.ticket, "tickets order the edit history");
        }
        // Reopen: both committed edits must recover (no explicit save —
        // the group commit itself was the fsync-point).
        let ws = Workspace::open(&dir).unwrap();
        let s = ws.session();
        s.open_sheet("ledger").unwrap();
        assert_eq!(
            s.value("ledger", CellAddr::new(1, 0)).unwrap(),
            CellValue::Number(200.0)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_op_mode_counts_inline_syncs() {
        let dir = temp_dir("per-op");
        let ws = Workspace::open_with(
            &dir,
            WorkspaceConfig {
                commit_mode: CommitMode::PerOp,
                ..Default::default()
            },
        )
        .unwrap();
        let s = ws.session();
        s.open_sheet("x").unwrap();
        // Baseline after open (the open-time checkpoint itself fsyncs
        // once through the shared fsync-point).
        let (_, group_fsyncs_at_open, _) = ws.commit_stats();
        for i in 0..5u32 {
            s.apply_edit("x", set(i, 0, "1")).unwrap();
        }
        let (_, group_fsyncs, inline) = ws.commit_stats();
        assert_eq!(inline, 5, "per-op mode pays one fsync per edit");
        assert_eq!(
            group_fsyncs, group_fsyncs_at_open,
            "no group-commit fsyncs in per-op mode"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn staged_edits_commit_on_await() {
        let dir = temp_dir("stage-await");
        {
            let ws = Workspace::open(&dir).unwrap();
            let s = ws.session();
            s.open_sheet("p").unwrap();
            // Stage a window of edits; none is individually awaited.
            let mut last = 0;
            for i in 0..6u32 {
                let r = s.stage_edit("p", set(i, 0, &i.to_string())).unwrap();
                assert!(!r.durable, "group staging must not block on fsync");
                assert!(r.ticket > last);
                last = r.ticket;
            }
            // Awaiting the last ticket commits the whole window.
            s.await_commit("p", last).unwrap();
        }
        let ws = Workspace::open(&dir).unwrap();
        let s = ws.session();
        s.open_sheet("p").unwrap();
        for i in 0..6u32 {
            assert_eq!(
                s.value("p", CellAddr::new(i, 0)).unwrap(),
                CellValue::Number(i as f64),
                "staged edit {i} must have committed"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn per_op_staging_is_durable_immediately() {
        let dir = temp_dir("stage-per-op");
        let ws = Workspace::open_with(
            &dir,
            WorkspaceConfig {
                commit_mode: CommitMode::PerOp,
                ..Default::default()
            },
        )
        .unwrap();
        let s = ws.session();
        s.open_sheet("p").unwrap();
        let r = s.stage_edit("p", set(0, 0, "9")).unwrap();
        assert!(r.durable, "per-op mode fsyncs staged ops inline");
        s.await_commit("p", r.ticket).unwrap(); // no-op, must not block
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sheets_are_independent() {
        let ws = Workspace::in_memory();
        let s = ws.session();
        s.open_sheet("a").unwrap();
        s.open_sheet("b").unwrap();
        s.apply_edit("a", set(0, 0, "1")).unwrap();
        s.apply_edit("b", set(0, 0, "2")).unwrap();
        assert_eq!(
            s.value("a", CellAddr::new(0, 0)).unwrap(),
            CellValue::Number(1.0)
        );
        assert_eq!(
            s.value("b", CellAddr::new(0, 0)).unwrap(),
            CellValue::Number(2.0)
        );
        assert_eq!(ws.sheet_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn import_rows_commits_and_serves_windows() {
        let dir = temp_dir("import");
        let ws = Workspace::open(&dir).unwrap();
        let s = ws.session();
        s.open_sheet("data").unwrap();
        let rect = s
            .import_rows(
                "data",
                CellAddr::new(2, 1),
                3,
                (0..4)
                    .map(|r| {
                        (0..3)
                            .map(|c| CellValue::Number((r * 3 + c) as f64))
                            .collect()
                    })
                    .collect(),
            )
            .unwrap();
        assert_eq!(rect, Rect::new(2, 1, 5, 3));
        let window = s.fetch_window("data", rect).unwrap();
        assert_eq!(window.len(), 12);
        assert_eq!(s.stats("data").unwrap().regions, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
