//! Workspace-level chaos suite: random edit tapes crossed with random
//! storage fault schedules, driven through the public `Session` API.
//!
//! The contract under test is the acknowledgement boundary:
//!
//! * an edit whose `apply_edit` returned `Ok` (or whose staged ticket was
//!   successfully awaited) is **acknowledged** and must survive closing
//!   the faulty workspace and reopening the directory on a healthy
//!   filesystem — no matter which file operation failed, when;
//! * a sheet whose store failed goes **degraded**: reads keep serving the
//!   last acknowledged state, every durable mutation is refused with
//!   [`WorkspaceError::Degraded`], and only a reopen recovers.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataspread_grid::{CellAddr, CellValue};
use dataspread_relstore::{FaultFs, FaultKind, FaultOp, FaultPlan, FaultRule};
use dataspread_workspace::{CommitMode, Edit, Workspace, WorkspaceConfig, WorkspaceError};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dataspread-ws-chaos-{name}-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

const OPS: &[FaultOp] = &[
    FaultOp::Write,
    FaultOp::Sync,
    FaultOp::OpenFile,
    FaultOp::Rename,
    FaultOp::SetLen,
    FaultOp::Remove,
];
const KINDS: &[FaultKind] = &[FaultKind::Io, FaultKind::Enospc, FaultKind::ShortWrite];

fn random_rule(rng: &mut StdRng) -> FaultRule {
    let rule = FaultRule::new(
        OPS[rng.gen_range(0..OPS.len())],
        rng.gen_range(0..150),
        KINDS[rng.gen_range(0..KINDS.len())],
    );
    if rng.gen_bool(0.5) {
        rule.sticky()
    } else {
        rule
    }
}

/// One chaos round: a random fault schedule against a random tape of
/// acknowledged edits (each edit targets a unique cell with a unique
/// value, so survival is checkable per edit regardless of which later
/// ops failed). Returns the edits that were acknowledged durable.
fn chaos_round(seed: u64, dir: &PathBuf) -> Vec<(CellAddr, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = FaultPlan::new();
    for _ in 0..rng.gen_range(1..=3) {
        plan.push(random_rule(&mut rng));
    }
    let commit_mode = if rng.gen_bool(0.5) {
        CommitMode::PerOp
    } else {
        CommitMode::Group
    };
    let config = WorkspaceConfig {
        commit_mode,
        storage_fs: Some(FaultFs::new(Arc::clone(&plan))),
        ..WorkspaceConfig::default()
    };

    let mut acked = Vec::new();
    let Ok(ws) = Workspace::open_with(dir, config) else {
        return acked;
    };
    let session = ws.session();
    if session.open_sheet("grid").is_err() {
        // The fault hit recovery itself; nothing was acknowledged.
        return acked;
    }
    let mut staged: Vec<(u64, CellAddr, f64)> = Vec::new();
    for i in 0..rng.gen_range(20..60u32) {
        let addr = CellAddr::new(i, rng.gen_range(0..4));
        let value = f64::from(seed as u32 % 1000) * 1000.0 + f64::from(i);
        let edit = Edit::Set {
            row: addr.row,
            col: addr.col,
            input: format!("{value}"),
        };
        match rng.gen_range(0u32..10) {
            // Mostly synchronous edits: Ok = acknowledged durable.
            0..=5 => {
                if session.apply_edit("grid", edit).is_ok() {
                    acked.push((addr, value));
                }
            }
            // Pipelined edits: acknowledged once the ticket is awaited
            // (or immediately when the receipt already says durable).
            6..=8 => {
                if let Ok(receipt) = session.stage_edit("grid", edit) {
                    if receipt.durable {
                        acked.push((addr, value));
                    } else {
                        staged.push((receipt.ticket, addr, value));
                    }
                }
            }
            // Occasional explicit checkpoint, failure allowed.
            _ => {
                let _ = session.checkpoint("grid");
            }
        }
        // Periodically settle the staged window.
        if staged.len() >= 5 {
            for (ticket, addr, value) in staged.drain(..) {
                if session.await_commit("grid", ticket).is_ok() {
                    acked.push((addr, value));
                }
            }
        }
    }
    for (ticket, addr, value) in staged.drain(..) {
        if session.await_commit("grid", ticket).is_ok() {
            acked.push((addr, value));
        }
    }
    acked
}

/// Random fault schedules × random tapes: whatever failed, reopening on
/// a healthy filesystem must surface every acknowledged edit, report a
/// healthy store, and accept new durable work.
#[test]
fn chaos_acknowledged_edits_survive_reopen() {
    for seed in 0..24u64 {
        let dir = temp_dir("round");
        let acked = chaos_round(seed, &dir);

        let ws = Workspace::open(&dir)
            .unwrap_or_else(|e| panic!("seed {seed}: reopen on healthy fs: {e}"));
        let session = ws.session();
        session
            .open_sheet("grid")
            .unwrap_or_else(|e| panic!("seed {seed}: recovery must succeed: {e}"));
        assert_eq!(
            session.storage_failed("grid").unwrap(),
            None,
            "seed {seed}: reopened sheet must be healthy"
        );
        for (addr, value) in &acked {
            assert_eq!(
                session.value("grid", *addr).unwrap(),
                CellValue::Number(*value),
                "seed {seed}: acknowledged edit at {addr:?} lost in recovery \
                 ({} acked total)",
                acked.len()
            );
        }
        // The recovered workspace takes new durable writes.
        session
            .apply_edit(
                "grid",
                Edit::Set {
                    row: 10_000,
                    col: 0,
                    input: "post".into(),
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed}: write after recovery: {e}"));
        drop(session);
        drop(ws);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Degraded mode end-to-end, in both commit modes: after a failed WAL
/// fsync the sheet refuses durable mutations with
/// [`WorkspaceError::Degraded`], keeps serving reads of the last
/// acknowledged state, and a reopen restores full service.
#[test]
fn degraded_sheet_serves_reads_and_refuses_writes() {
    for mode in [CommitMode::PerOp, CommitMode::Group] {
        let dir = temp_dir("degraded");
        let plan = FaultPlan::new();
        {
            let config = WorkspaceConfig {
                commit_mode: mode,
                storage_fs: Some(FaultFs::new(Arc::clone(&plan))),
                ..WorkspaceConfig::default()
            };
            let ws = Workspace::open_with(&dir, config).unwrap();
            let session = ws.session();
            session.open_sheet("grid").unwrap();
            session
                .apply_edit(
                    "grid",
                    Edit::Set {
                        row: 0,
                        col: 0,
                        input: "7".into(),
                    },
                )
                .unwrap();

            // Every WAL fsync fails from here on.
            plan.push(
                FaultRule::new(FaultOp::Sync, 0, FaultKind::Io)
                    .sticky()
                    .on_path("wal"),
            );
            let err = session
                .apply_edit(
                    "grid",
                    Edit::Set {
                        row: 1,
                        col: 0,
                        input: "8".into(),
                    },
                )
                .unwrap_err();
            assert!(
                matches!(
                    err,
                    WorkspaceError::Degraded(_)
                        | WorkspaceError::StorageFailed(_)
                        | WorkspaceError::Store(_)
                        | WorkspaceError::Engine(_)
                ),
                "{mode:?}: unexpected failure shape: {err:?}"
            );
            assert!(
                session.storage_failed("grid").unwrap().is_some(),
                "{mode:?}: failed fsync must degrade the sheet"
            );

            // Durable mutations now refuse with the coded degraded error...
            let err = session
                .apply_edit(
                    "grid",
                    Edit::Set {
                        row: 2,
                        col: 0,
                        input: "9".into(),
                    },
                )
                .unwrap_err();
            assert!(
                matches!(err, WorkspaceError::Degraded(_)),
                "{mode:?}: expected Degraded, got {err:?}"
            );
            let err = session
                .stage_edit(
                    "grid",
                    Edit::Set {
                        row: 2,
                        col: 0,
                        input: "9".into(),
                    },
                )
                .unwrap_err();
            assert!(matches!(err, WorkspaceError::Degraded(_)));

            // ...while reads keep serving the acknowledged state.
            assert_eq!(
                session.value("grid", CellAddr::new(0, 0)).unwrap(),
                CellValue::Number(7.0),
                "{mode:?}: degraded sheet must keep serving reads"
            );
        }
        plan.disarm();
        let ws = Workspace::open(&dir).unwrap();
        let session = ws.session();
        session.open_sheet("grid").unwrap();
        assert_eq!(session.storage_failed("grid").unwrap(), None);
        assert_eq!(
            session.value("grid", CellAddr::new(0, 0)).unwrap(),
            CellValue::Number(7.0)
        );
        session
            .apply_edit(
                "grid",
                Edit::Set {
                    row: 1,
                    col: 0,
                    input: "8".into(),
                },
            )
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
