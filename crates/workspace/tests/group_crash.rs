//! Crash-mid-group-commit recovery: the every-byte-cut harness applied to
//! a WAL produced by *concurrent* writers under the group-commit
//! committer.
//!
//! The crash model: the machine dies at an arbitrary byte of the sheet's
//! WAL — possibly in the middle of a batch the committer was about to
//! fsync. Recovery must reconstruct the state of some prefix of the
//! *serialized* edit order (commit-ticket order), never a torn record and
//! never a reordering; and every edit that was **acknowledged** (its
//! `apply_edit` returned) must survive a cut at the full length, because
//! acknowledgement only happens after the covering fsync.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use dataspread_engine::durable::{image_path, wal_path};
use dataspread_engine::SheetEngine;
use dataspread_grid::CellAddr;
use dataspread_relstore::wal::{WAL_HEADER_LEN, WAL_RECORD_OVERHEAD};
use dataspread_workspace::{Edit, Workspace, WorkspaceConfig};

fn temp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("dataspread-ws-crash-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Record end-offsets in a WAL segment, parsed from the framing alone.
fn record_ends(wal_bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut off = WAL_HEADER_LEN as usize;
    while off + WAL_RECORD_OVERHEAD as usize <= wal_bytes.len() {
        let len = u32::from_le_bytes(wal_bytes[off..off + 4].try_into().unwrap()) as usize;
        let end = off + WAL_RECORD_OVERHEAD as usize + len;
        if end > wal_bytes.len() {
            break;
        }
        ends.push(end);
        off = end;
    }
    ends
}

#[test]
fn crash_at_every_wal_byte_recovers_a_ticket_ordered_prefix() {
    let dir = temp_dir("every-byte");
    let sheet_dir = dir.join("grid");
    let log: Arc<Mutex<Vec<(u64, Edit)>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let ws = Workspace::open_with(&dir, WorkspaceConfig::default()).unwrap();
        let session = ws.session();
        session.open_sheet("grid").unwrap();
        // 4 concurrent writers, every edit acknowledged through the group
        // committer. Disjoint columns per writer keep the tape readable in
        // failures; the serialization order is still genuinely concurrent.
        std::thread::scope(|scope| {
            for w in 0..4u32 {
                let session = session.clone();
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    for i in 0..30u32 {
                        let edit = Edit::Set {
                            row: i,
                            col: w * 2,
                            input: format!("w{w}v{i}"),
                        };
                        let receipt = session.apply_edit("grid", edit.clone()).expect("edit");
                        assert!(receipt.durable);
                        log.lock().unwrap().push((receipt.ticket, edit));
                    }
                });
            }
        });
    }
    let mut log = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
    log.sort_by_key(|(t, _)| *t);
    let ordered: Vec<Edit> = log.into_iter().map(|(_, e)| e).collect();

    let image_bytes = std::fs::read(image_path(&sheet_dir)).unwrap();
    let wal_bytes = std::fs::read(wal_path(&sheet_dir)).unwrap();
    let ends = record_ends(&wal_bytes);
    assert_eq!(
        ends.len(),
        ordered.len(),
        "one committed WAL record per acknowledged edit, in ticket order"
    );

    // Lazily-advanced oracle: state after each serialized-prefix length.
    let mut oracle = SheetEngine::new();
    let mut applied = 0usize;
    let cut_dir = temp_dir("every-byte-cut");
    for cut in 0..=wal_bytes.len() {
        let committed = ends.iter().take_while(|e| **e <= cut).count();
        while applied < committed {
            let Edit::Set { row, col, input } = &ordered[applied] else {
                unreachable!("tape is Set-only");
            };
            oracle
                .update_cell(CellAddr::new(*row, *col), input)
                .unwrap();
            applied += 1;
        }
        std::fs::remove_dir_all(&cut_dir).ok();
        std::fs::create_dir_all(&cut_dir).unwrap();
        std::fs::write(image_path(&cut_dir), &image_bytes).unwrap();
        std::fs::write(wal_path(&cut_dir), &wal_bytes[..cut]).unwrap();
        let recovered =
            SheetEngine::open(&cut_dir).unwrap_or_else(|e| panic!("open failed at cut {cut}: {e}"));
        assert_eq!(
            recovered.snapshot(),
            oracle.snapshot(),
            "cut at byte {cut} must recover exactly the first {committed} \
             serialized edits"
        );
    }
    // The full-length "cut" is the no-crash case: every acknowledged edit
    // (all 120) is present.
    assert_eq!(applied, ordered.len());
    std::fs::remove_dir_all(&cut_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}
