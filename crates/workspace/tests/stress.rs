//! Concurrent differential stress suite: random sessions hammer a shared
//! workspace from many threads, and the result must be *exactly* what a
//! single-threaded engine produces when it replays the edits in the order
//! they serialized (commit-ticket order).
//!
//! The tickets are the linchpin: every logged op gets a monotone ticket
//! under its sheet's write lock, so sorting the concurrently-recorded
//! `(ticket, op)` pairs reconstructs the actual serialization. The oracle
//! replays that sequence on a fresh single-threaded [`SheetEngine`]; the
//! workspace state (live, and recovered from disk after a simulated
//! crash) must match cell-for-cell — and, for the no-mid-checkpoint
//! variant, the final checkpoint images must match **byte-for-byte**.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dataspread_engine::SheetEngine;
use dataspread_grid::{Cell, CellAddr, Rect, SparseSheet};
use dataspread_workspace::{Edit, Session, Workspace, WorkspaceConfig};

const MAX_ROW: u32 = 40;
const MAX_COL: u32 = 10;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dataspread-ws-stress-{name}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn clone_store(src: &Path, dst: &Path) {
    std::fs::remove_dir_all(dst).ok();
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Deterministic, position-independent inputs (formulas reference no
/// cells, so the oracle's values survive structural edits).
fn random_edit(rng: &mut StdRng, tag: u32) -> Edit {
    let roll = rng.gen_range(0u32..100);
    if roll < 70 {
        let inputs = [
            format!("{tag}"),
            format!("{}.5", tag % 97),
            "TRUE".to_string(),
            format!("text-{tag}"),
            String::new(),
            "=SUM(1,2,3)".to_string(),
            "=1/0".to_string(),
        ];
        Edit::Set {
            row: rng.gen_range(0..MAX_ROW),
            col: rng.gen_range(0..MAX_COL),
            input: inputs[rng.gen_range(0..inputs.len())].clone(),
        }
    } else {
        let at = rng.gen_range(0..MAX_ROW);
        let n = rng.gen_range(1u32..=2);
        match roll % 4 {
            0 => Edit::InsertRows { at, n },
            1 => Edit::DeleteRows { at, n },
            2 => Edit::InsertCols {
                at: at % MAX_COL,
                n,
            },
            _ => Edit::DeleteCols {
                at: at % MAX_COL,
                n,
            },
        }
    }
}

fn apply_to_oracle(oracle: &mut SheetEngine, edit: &Edit) {
    match edit {
        Edit::Set { row, col, input } => oracle
            .update_cell(CellAddr::new(*row, *col), input)
            .expect("oracle set"),
        Edit::InsertRows { at, n } => oracle.insert_rows(*at, *n).expect("oracle ins rows"),
        Edit::DeleteRows { at, n } => oracle.delete_rows(*at, *n).expect("oracle del rows"),
        Edit::InsertCols { at, n } => oracle.insert_cols(*at, *n).expect("oracle ins cols"),
        Edit::DeleteCols { at, n } => oracle.delete_cols(*at, *n).expect("oracle del cols"),
    }
}

/// Sorted cell list — the canonical byte-comparable form of a sheet state.
fn canonical_cells(snapshot: &SparseSheet) -> Vec<(CellAddr, Cell)> {
    let mut cells: Vec<(CellAddr, Cell)> = snapshot.iter().map(|(a, c)| (a, c.clone())).collect();
    cells.sort_by_key(|(a, _)| (a.row, a.col));
    cells
}

/// Drive `writers` threads of random edits/fetches (plus optional random
/// checkpoints) against `sheets` shared sheets; return the per-sheet
/// serialized edit logs, sorted by commit ticket.
/// Per-sheet logs of `(commit ticket, edit)` pairs.
type EditLog = Arc<Mutex<Vec<(u64, Edit)>>>;

fn run_stress(
    session: &Session,
    sheets: &[String],
    writers: usize,
    ops_per_writer: usize,
    checkpoints: bool,
    seed: u64,
) -> Vec<Vec<(u64, Edit)>> {
    let logs: Vec<EditLog> = sheets
        .iter()
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    let window_hits = Arc::new(AtomicU32::new(0));
    std::thread::scope(|scope| {
        for w in 0..writers {
            let session = session.clone();
            let logs = logs.clone();
            let window_hits = Arc::clone(&window_hits);
            let sheets = sheets.to_vec();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed ^ ((w as u64 + 1) * 0x9E37_79B9));
                for i in 0..ops_per_writer {
                    let si = rng.gen_range(0..sheets.len());
                    let sheet = &sheets[si];
                    let roll = rng.gen_range(0u32..100);
                    if roll < 60 {
                        let edit = random_edit(&mut rng, (w * ops_per_writer + i) as u32);
                        let receipt = session.apply_edit(sheet, edit.clone()).expect("edit");
                        logs[si].lock().unwrap().push((receipt.ticket, edit));
                    } else if roll < 90 {
                        // Concurrent positional window fetch (shared lock).
                        let r1 = rng.gen_range(0..MAX_ROW);
                        let window = session
                            .fetch_window(sheet, Rect::new(r1, 0, r1 + 10, MAX_COL))
                            .expect("window");
                        window_hits.fetch_add(window.filled_count() as u32, Ordering::Relaxed);
                    } else if checkpoints && roll < 95 {
                        session.checkpoint(sheet).expect("checkpoint");
                    } else {
                        let _ = session.value(
                            sheet,
                            CellAddr::new(rng.gen_range(0..MAX_ROW), rng.gen_range(0..MAX_COL)),
                        );
                    }
                }
            });
        }
    });
    logs.into_iter()
        .map(|log| {
            let mut log = Arc::try_unwrap(log).unwrap().into_inner().unwrap();
            log.sort_by_key(|(ticket, _)| *ticket);
            // Tickets are per-sheet unique: each logged op appended exactly
            // one record under the sheet's write lock.
            for pair in log.windows(2) {
                assert!(pair[0].0 < pair[1].0, "duplicate ticket {pair:?}");
            }
            log
        })
        .collect()
}

/// The full pipeline: concurrent run → ticket-ordered oracle replay →
/// crash-clone recovery → state comparison. With `checkpoints` the run
/// also interleaves random checkpoints (exercising truncation under
/// concurrency); without them the final images are additionally compared
/// byte-for-byte.
fn stress_roundtrip(name: &str, checkpoints: bool, seed: u64) {
    let dir = temp_dir(name);
    let sheets: Vec<String> = (0..3).map(|i| format!("sheet{i}")).collect();
    let (logs, live_states) = {
        let ws = Workspace::open_with(&dir, WorkspaceConfig::default()).unwrap();
        let session = ws.session();
        for s in &sheets {
            session.open_sheet(s).unwrap();
        }
        let writers = 4;
        let ops = if cfg!(debug_assertions) { 60 } else { 250 };
        let logs = run_stress(&session, &sheets, writers, ops, checkpoints, seed);
        let live: Vec<SparseSheet> = sheets
            .iter()
            .map(|s| session.snapshot(s).unwrap())
            .collect();
        (logs, live)
        // Workspace drops here: committer drains, files stay as a crash
        // image (group commit means every acknowledged edit is durable
        // without any explicit save).
    };

    for (si, sheet) in sheets.iter().enumerate() {
        // Oracle: single-threaded replay in serialization order.
        let mut oracle = SheetEngine::new();
        for (_, edit) in &logs[si] {
            apply_to_oracle(&mut oracle, edit);
        }
        assert_eq!(
            canonical_cells(&live_states[si]),
            canonical_cells(&oracle.snapshot()),
            "{name}/{sheet}: live state must equal the ticket-ordered replay"
        );

        // Crash: recover the sheet directory and compare again.
        let crash = temp_dir(&format!("{name}-crash-{sheet}"));
        clone_store(&dir.join(sheet), &crash);
        let mut recovered = SheetEngine::open(&crash).unwrap();
        assert_eq!(
            canonical_cells(&recovered.snapshot()),
            canonical_cells(&oracle.snapshot()),
            "{name}/{sheet}: recovered state must equal the oracle"
        );

        if !checkpoints {
            // Identical checkpoint histories (one empty checkpoint at
            // open, one full fold now) ⇒ the canonical image bytes must
            // agree exactly.
            let oracle_dir = temp_dir(&format!("{name}-oracle-{sheet}"));
            let mut durable_oracle = SheetEngine::open(&oracle_dir).unwrap();
            for (_, edit) in &logs[si] {
                apply_to_oracle(&mut durable_oracle, edit);
            }
            durable_oracle.checkpoint().unwrap();
            recovered.checkpoint().unwrap();
            assert_eq!(
                std::fs::read(crash.join("pages.db")).unwrap(),
                std::fs::read(oracle_dir.join("pages.db")).unwrap(),
                "{name}/{sheet}: recovered image must match the \
                 single-threaded oracle byte-for-byte"
            );
            std::fs::remove_dir_all(&oracle_dir).ok();
        }
        std::fs::remove_dir_all(&crash).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_edits_match_ticket_ordered_oracle_byte_for_byte() {
    stress_roundtrip("no-ckpt", false, 0x5EED_0001);
}

#[test]
fn concurrent_edits_with_interleaved_checkpoints_match_oracle() {
    stress_roundtrip("with-ckpt", true, 0x5EED_0002);
}

#[test]
fn concurrent_readers_see_consistent_windows_during_writes() {
    // Readers share the sheet lock with each other; every window they see
    // must be *some* serialized state — in particular fetch_window must
    // never observe a torn structural edit (panic/overlap inside the
    // hybrid layer would fail the fetch).
    let ws = Workspace::in_memory();
    let session = ws.session();
    session.open_sheet("s").unwrap();
    std::thread::scope(|scope| {
        for w in 0..2 {
            let session = session.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(77 + w);
                for i in 0..300u32 {
                    let edit = random_edit(&mut rng, i);
                    session.apply_edit("s", edit).unwrap();
                }
            });
        }
        for r in 0..3 {
            let session = session.clone();
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + r);
                for _ in 0..400 {
                    let r1 = rng.gen_range(0..MAX_ROW);
                    let cells = session
                        .fetch_window("s", Rect::new(r1, 0, r1 + 8, MAX_COL))
                        .expect("window fetch during writes")
                        .cells();
                    // Row-major order is part of the contract.
                    for pair in cells.windows(2) {
                        assert!(
                            (pair[0].0.row, pair[0].0.col) < (pair[1].0.row, pair[1].0.col),
                            "window not row-major: {pair:?}"
                        );
                    }
                }
            });
        }
    });
}
