//! Customer-management use case (paper Example 2, §VII-D.b, Figure 19).
//!
//! A retail owner manages customers/suppliers/invoices/payments in a
//! database, but wants to manipulate them like a spreadsheet: `linkTable`
//! establishes two-way sync between sheet regions and tables, `sql()` runs
//! joins and aggregation, and `index()` spills composite results onto the
//! grid — no pre-programmed application, no SQL client.
//!
//! Run with: `cargo run --release --example customer_management`

use dataspread::corpus::retail::populate_retail;
use dataspread::engine::SheetEngine;
use dataspread::grid::{CellAddr, Rect};
use dataspread::rel::ops as relops;
use dataspread::rel::RowExpr;
use dataspread::relstore::Datum;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sheet = SheetEngine::new();

    // The owner's existing MySQL-style database.
    {
        let db = sheet.database();
        let mut guard = db.write();
        populate_retail(&mut guard, 40, 7)?;
    }

    // --- linkTable: live views of invoice and supp on the sheet -------
    let inv_rect = sheet.link_table(Rect::parse_a1("A1:F40")?, "invoice")?;
    let supp_rect = sheet.link_table(Rect::parse_a1("J1:K4")?, "supp")?;
    println!("linked invoice at {inv_rect}, supp at {supp_rect}");

    // Direct manipulation: editing a linked cell updates the table.
    let first_amount = CellAddr::new(inv_rect.r1, inv_rect.c1 + 3);
    sheet
        .storage_mut()
        .set_cell(first_amount, dataspread::grid::Cell::value(123.45))?;
    let check = sheet.sql(
        "SELECT COUNT(*) AS n FROM invoice WHERE amount = 123.45",
        &[],
    )?;
    println!(
        "edited one invoice amount through the sheet; table sees {} match(es)",
        check.rows[0][0]
    );

    // --- sql(): join + group + aggregate (Figure 19's A8 cell) --------
    let per_supplier = sheet.sql(
        "SELECT s.name, COUNT(*) AS invoices, SUM(i.amount) AS total \
         FROM invoice i JOIN supp s ON i.supp_id = s.id \
         GROUP BY s.name ORDER BY total DESC",
        &[],
    )?;
    println!(
        "\nper-supplier totals (sql function):\n{}",
        per_supplier.to_text()
    );

    // Spill the composite value onto the sheet via index().
    let at = CellAddr::parse_a1("A45")?;
    sheet.place_composite(at, per_supplier.clone());
    for i in 1..=per_supplier.len().min(3) {
        for j in 1..=per_supplier.arity() {
            sheet.index_composite(at, i, j, CellAddr::new(44 + i as u32, (j - 1) as u32))?;
        }
    }
    println!(
        "spilled top rows at A46:C48; A46 = {}",
        sheet.value(CellAddr::parse_a1("A46")?)
    );

    // --- prepared statements -------------------------------------------
    let overdue = sheet.sql(
        "SELECT id, amount, due_in_days FROM invoice \
         WHERE paid = FALSE AND due_in_days < ? ORDER BY due_in_days LIMIT 5",
        &[Datum::Int(0)],
    )?;
    println!(
        "overdue unpaid invoices (due_in_days < 0):\n{}",
        overdue.to_text()
    );

    // --- relational operators on sheet ranges --------------------------
    // Top supplier via project/filter on the composite result.
    let top = relops::project(&per_supplier, &["name"])?;
    println!("top supplier (project): {}", top.rows[0][0]);
    let big = relops::filter(
        &per_supplier,
        &RowExpr::Cmp(
            dataspread::rel::expr::CmpOp::Gt,
            Box::new(RowExpr::col("total")),
            Box::new(RowExpr::lit(10_000.0)),
        ),
    )?;
    println!("suppliers with > $10k total: {}", big.len());

    // Set ops: suppliers with invoices vs all suppliers.
    let with_inv = sheet.sql("SELECT DISTINCT supp_id FROM invoice", &[])?;
    let all = sheet.sql("SELECT id FROM supp", &[])?;
    let idle = relops::difference(&relops::rename(&all, "id", "supp_id")?, &with_inv)?;
    println!("suppliers without any invoice: {}", idle.len());
    Ok(())
}
