//! Genomics use case (paper Example 1, §VII-D.a, Figure 16).
//!
//! Biologists' VCF files run to millions of rows — beyond Excel's 1M-row
//! limit. This example imports a synthetic VCF-shaped dataset, then
//! "scrolls" (positional range fetches) to the millionth row with
//! interactive latency, and inserts a row in the middle without the
//! cascading-renumber penalty.
//!
//! Run with: `cargo run --release --example genomics_vcf [-- rows cols]`
//! Defaults to 1.3M rows × 12 columns (the paper's file was 1.3M × 284;
//! trim columns to keep the example's memory footprint laptop-friendly).

use std::time::Instant;

use dataspread::corpus::vcf::{vcf_header, vcf_rows};
use dataspread::engine::SheetEngine;
use dataspread::grid::{CellAddr, CellValue, Rect};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let n_rows: usize = args
        .get(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_300_000);
    let n_cols: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(12);
    let n_samples = n_cols.saturating_sub(9).max(1);

    println!(
        "importing VCF-like dataset: {n_rows} rows x {} columns ...",
        9 + n_samples
    );
    let t0 = Instant::now();
    let mut sheet = SheetEngine::new();
    // Header row.
    for (c, h) in vcf_header(n_samples).iter().enumerate() {
        sheet.update_cell(CellAddr::new(0, c as u32), h)?;
    }
    // Bulk import as a ROM region with O(N) positional-map construction.
    let rect = sheet.import_rows(
        CellAddr::new(1, 0),
        (9 + n_samples) as u32,
        vcf_rows(n_rows, n_samples, 42),
    )?;
    println!(
        "imported {} rows in {:.2?} (region {}, {} B accounted)",
        n_rows,
        t0.elapsed(),
        rect,
        sheet.storage_bytes()
    );

    // --- Scrolling: fetch a 40x? window at several positions ---------
    for &target in &[100usize, n_rows / 2, n_rows.saturating_sub(50).max(1)] {
        let t = Instant::now();
        let window = Rect::new(target as u32, 0, target as u32 + 39, 8);
        let cells = sheet.get_cells(window);
        let elapsed = t.elapsed();
        println!(
            "scroll to row {:>9}: fetched {:3} cells in {:?} (interactive: {})",
            target + 1,
            cells.len(),
            elapsed,
            if elapsed.as_millis() < 500 {
                "yes"
            } else {
                "NO"
            },
        );
        assert!(!cells.is_empty());
    }

    // Show the window around the millionth row like Figure 16.
    if n_rows >= 1_000_000 {
        println!("\nwindow at the millionth row:");
        let window = Rect::new(1_000_000, 0, 1_000_004, 5);
        for (addr, cell) in sheet.get_cells(window) {
            if addr.col == 0 {
                print!("  row {:>8}: ", addr.row + 1);
            }
            print!("{} ", cell.value.as_text());
            if addr.col == 5 {
                println!();
            }
        }
        println!();
    }

    // --- A positional middle insert (the operation that cascades in a
    //     position-as-is store) ---------------------------------------
    let mid = (n_rows / 2) as u32;
    let t = Instant::now();
    sheet.storage_mut().insert_rows(mid, 1)?;
    println!(
        "inserted a row at position {} in {:?} (no cascading renumber)",
        mid,
        t.elapsed()
    );
    assert_eq!(sheet.value(CellAddr::new(mid, 0)), CellValue::Empty);

    // --- A formula over a large range ---------------------------------
    let t = Instant::now();
    let qual_rows = 200_000.min(n_rows);
    sheet.update_cell(
        CellAddr::new(0, (9 + n_samples) as u32 + 1),
        &format!("=AVERAGE(F2:F{})", qual_rows + 1),
    )?;
    let avg = sheet.value(CellAddr::new(0, (9 + n_samples) as u32 + 1));
    println!(
        "AVERAGE(QUAL) over {} rows = {} in {:.2?}",
        qual_rows,
        avg.as_text(),
        t.elapsed()
    );
    Ok(())
}
