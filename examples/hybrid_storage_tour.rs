//! A tour of presentational awareness: how the hybrid optimizer adapts the
//! storage representation to the *shape* of the data (paper §IV).
//!
//! Builds four contrasting sheets (dense-wide, dense-tall, two-tables,
//! sparse-scatter), runs DP / Greedy / Aggressive-Greedy under both the
//! PostgreSQL and the "ideal database" cost models, and prints the chosen
//! decompositions next to the primitive baselines — a miniature of the
//! paper's Figure 13/25 analysis.
//!
//! Run with: `cargo run --release --example hybrid_storage_tour`

use dataspread::grid::{CellAddr, SparseSheet};
use dataspread::hybrid::dp::primitive_cost;
use dataspread::hybrid::{
    optimize_agg, optimize_dp, optimize_greedy, CostModel, GridView, ModelKind, OptimizerOptions,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dense(rows: u32, cols: u32) -> SparseSheet {
    let mut s = SparseSheet::new();
    for r in 0..rows {
        for c in 0..cols {
            s.set_value(CellAddr::new(r, c), (r + c) as i64);
        }
    }
    s
}

fn two_tables() -> SparseSheet {
    let mut s = dense(40, 6);
    for r in 60..90 {
        for c in 20..28 {
            s.set_value(CellAddr::new(r, c), (r * c) as i64);
        }
    }
    s
}

fn scatter() -> SparseSheet {
    let mut rng = StdRng::seed_from_u64(7);
    let mut s = SparseSheet::new();
    for _ in 0..120 {
        s.set_value(
            CellAddr::new(rng.gen_range(0..300), rng.gen_range(0..80)),
            rng.gen_range(0..100) as i64,
        );
    }
    s
}

fn main() {
    let sheets: Vec<(&str, SparseSheet)> = vec![
        ("dense-wide  (30 x 200)", dense(30, 200)),
        ("dense-tall  (2000 x 8)", dense(2000, 8)),
        ("two tables  (40x6 + 30x8)", two_tables()),
        ("sparse scatter (120 cells in 300x80)", scatter()),
    ];
    for cm_name in ["postgresql", "ideal"] {
        let cm = if cm_name == "postgresql" {
            CostModel::postgres()
        } else {
            CostModel::ideal()
        };
        println!("\n=== cost model: {cm_name} ===");
        for (name, sheet) in &sheets {
            let view = GridView::from_sheet(sheet);
            let opts = OptimizerOptions::default();
            println!(
                "\n  {name}: {} filled cells, density {:.3}",
                sheet.filled_count(),
                sheet.density()
            );
            for (label, kind) in [
                ("ROM", ModelKind::Rom),
                ("COM", ModelKind::Com),
                ("RCV", ModelKind::Rcv),
            ] {
                let c = primitive_cost(&view, &cm, kind);
                println!("    primitive {label:<4}            cost {c:>14.0}");
            }
            let greedy = optimize_greedy(&view, &cm, &opts);
            println!(
                "    Greedy: {:2} table(s)        cost {:>14.0}",
                greedy.table_count(),
                greedy.storage_cost(&view, &cm)
            );
            let agg = optimize_agg(&view, &cm, &opts);
            println!(
                "    Agg:    {:2} table(s)        cost {:>14.0}",
                agg.table_count(),
                agg.storage_cost(&view, &cm)
            );
            match optimize_dp(&view, &cm, &opts) {
                Ok(dp) => {
                    println!(
                        "    DP:     {:2} table(s)        cost {:>14.0}",
                        dp.table_count(),
                        dp.storage_cost(&view, &cm)
                    );
                    for region in dp.regions.iter().take(6) {
                        println!("        {} as {}", region.rect, region.kind);
                    }
                }
                Err(e) => println!("    DP skipped: {e}"),
            }
        }
    }
}
