//! Quickstart: the spreadsheet-oriented API of the storage engine.
//!
//! Reproduces the paper's Figure 7 running example — a grade sheet where
//! `F2 = AVERAGE(B2:C2)+D2+E2` — then demonstrates positional edits
//! (row inserts that would cascade in a naïve store) and storage
//! optimization.
//!
//! Run with: `cargo run --release --example quickstart`

use dataspread::engine::{OptimizeAlgorithm, SheetEngine};
use dataspread::grid::{CellAddr, Rect};
use dataspread::hybrid::{CostModel, OptimizerOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut sheet = SheetEngine::new();

    // --- Figure 7: a small grade sheet -------------------------------
    let headers = ["ID", "HW1", "HW2", "Midterm", "Final", "Total"];
    for (c, h) in headers.iter().enumerate() {
        sheet.update_cell(CellAddr::new(0, c as u32), h)?;
    }
    let students = [
        ("Alice", 10.0, 20.0, 30.0, 40.0),
        ("Bob", 8.0, 15.0, 25.0, 35.0),
        ("Carol", 9.0, 18.0, 28.0, 38.0),
        ("Dave", 8.0, 19.0, 29.0, 33.0),
    ];
    for (i, (name, hw1, hw2, mid, fin)) in students.iter().enumerate() {
        let r = i as u32 + 1;
        sheet.update_cell(CellAddr::new(r, 0), name)?;
        sheet.update_cell(CellAddr::new(r, 1), &hw1.to_string())?;
        sheet.update_cell(CellAddr::new(r, 2), &hw2.to_string())?;
        sheet.update_cell(CellAddr::new(r, 3), &mid.to_string())?;
        sheet.update_cell(CellAddr::new(r, 4), &fin.to_string())?;
        // Total = AVERAGE(HW1:HW2) + Midterm + Final, like the paper's F2.
        sheet.update_cell(
            CellAddr::new(r, 5),
            &format!("=AVERAGE(B{row}:C{row})+D{row}+E{row}", row = r + 1),
        )?;
    }
    sheet.update_cell_a1("F7", "=SUM(F2:F5)")?;
    sheet.update_cell_a1("F8", "=MAX(F2:F5)")?;

    println!("Figure 7 grade sheet:");
    print_window(&sheet, Rect::parse_a1("A1:F8")?);
    assert_eq!(sheet.value(CellAddr::parse_a1("F2")?).as_text(), "85");

    // --- Editing recomputes dependents --------------------------------
    println!("\nAlice's HW1 regrade: 10 -> 20");
    sheet.update_cell_a1("B2", "20")?;
    println!("F2 is now {}", sheet.value(CellAddr::parse_a1("F2")?));

    // --- Positional edits ---------------------------------------------
    // Insert a new student row above Bob; every later formula shifts.
    println!("\nInserting a row above Bob (position 2)...");
    sheet.insert_rows(2, 1)?;
    sheet.update_cell_a1("A3", "Eve")?;
    for (col, v) in [("B", 10.0), ("C", 10.0), ("D", 20.0), ("E", 30.0)] {
        sheet.update_cell_a1(&format!("{col}3"), &v.to_string())?;
    }
    sheet.update_cell_a1("F3", "=AVERAGE(B3:C3)+D3+E3")?;
    println!("the totals column followed its rows:");
    print_window(&sheet, Rect::parse_a1("A1:F9")?);

    // --- Storage optimization ------------------------------------------
    let report = sheet.optimize(
        &CostModel::postgres(),
        OptimizeAlgorithm::Agg,
        &OptimizerOptions::default(),
    )?;
    println!(
        "\nhybrid optimizer chose {} table(s); storage {} B -> {} B",
        report.decomposition.table_count(),
        report.storage_before,
        report.storage_after,
    );
    for region in &report.decomposition.regions {
        println!("  {} stored as {}", region.rect, region.kind);
    }
    Ok(())
}

fn print_window(sheet: &SheetEngine, window: Rect) {
    let cells = sheet.get_cells(window);
    for r in window.r1..=window.r2 {
        let mut line = String::new();
        for c in window.c1..=window.c2 {
            let text = cells
                .iter()
                .find(|(a, _)| a.row == r && a.col == c)
                .map(|(_, cell)| cell.value.as_text())
                .unwrap_or_default();
            line.push_str(&format!("{text:>9} "));
        }
        println!("  {line}");
    }
}
