//! # DataSpread-rs
//!
//! A scalable storage engine for *presentational data management* (PDM) —
//! a from-scratch Rust reproduction of the DataSpread storage engine
//! (Bendre et al., ICDE 2018).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`obs`] — the dependency-free observability core: lock-free
//!   counters/gauges, log₂ latency histograms with mergeable snapshots,
//!   a bounded slow-op [`obs::EventRing`], and the
//!   [`obs::MetricsRegistry`] every workspace carries (snapshots are
//!   served over the wire via `Request::Metrics` and rendered as a
//!   Prometheus-style text exposition by `--metrics-dump`),
//! * [`grid`] — the conceptual data model (cells, addresses, regions),
//! * [`posmap`] — positional mapping (hierarchical counted B+-tree, …),
//! * [`relstore`] — the embedded relational row store,
//! * [`hybrid`] — primitive/hybrid data models and the decomposition
//!   optimizer (DP, greedy, aggressive greedy, incremental),
//! * [`formula`] — formula parsing, dependency tracking, evaluation,
//! * [`rel`] — relational operators and the mini-SQL engine,
//! * [`analysis`] — spreadsheet structure/formula analysis (paper §II),
//! * [`corpus`] — synthetic corpora and workload generators,
//! * [`engine`] — the storage engine proper: ROM/COM/RCV/TOM translators
//!   and the [`engine::SheetEngine`] facade, including durable paged
//!   persistence (`SheetEngine::open` / `save` / `checkpoint`: an LRU
//!   [`relstore::Pager`] image plus a [`relstore::Wal`] with crash
//!   recovery on reopen),
//! * [`workspace`] — the concurrent multi-sheet service: sheets sharded
//!   behind per-sheet locks, a name-keyed session API
//!   (`open_sheet` / `fetch_window` / `apply_edit` / `import_rows` /
//!   `checkpoint`), and a group-commit committer that batches WAL fsyncs
//!   across concurrent writers,
//! * [`proto`] — the wire-stable protocol layer: length-prefixed
//!   framing, request/response envelopes, compact
//!   [`proto::WindowPatch`] window encoding, and stable numeric error
//!   codes,
//! * [`server`] — the `dataspread-server` TCP server hosting a
//!   workspace behind that protocol (session multiplexing, group-commit
//!   pipelining, per-connection admission control),
//! * [`client`] — the blocking TCP client whose
//!   [`client::RemoteSession`] mirrors the in-process session API
//!   one-to-one.
//!
//! ## Quickstart
//!
//! ```
//! use dataspread::engine::SheetEngine;
//! use dataspread::grid::{CellAddr, CellValue};
//!
//! let mut sheet = SheetEngine::new();
//! sheet.update_cell_a1("A1", "10").unwrap();
//! sheet.update_cell_a1("A2", "32").unwrap();
//! sheet.update_cell_a1("A3", "=SUM(A1:A2)").unwrap();
//! assert_eq!(sheet.value(CellAddr::parse_a1("A3").unwrap()), CellValue::Number(42.0));
//! ```

pub use dataspread_analysis as analysis;
pub use dataspread_client as client;
pub use dataspread_corpus as corpus;
pub use dataspread_engine as engine;
pub use dataspread_formula as formula;
pub use dataspread_grid as grid;
pub use dataspread_hybrid as hybrid;
pub use dataspread_obs as obs;
pub use dataspread_posmap as posmap;
pub use dataspread_proto as proto;
pub use dataspread_rel as rel;
pub use dataspread_relstore as relstore;
pub use dataspread_server as server;
pub use dataspread_workspace as workspace;
