//! Property test: the storage engine agrees with the in-memory
//! `SparseSheet` oracle under random edit scripts — for every combination
//! of data model (hybrid routing incl. per-model regions) and positional
//! mapping scheme.

use proptest::prelude::*;

use dataspread::engine::hybrid::HybridSheet;
use dataspread::engine::PosMapKind;
use dataspread::grid::{Cell, CellAddr, Rect, SparseSheet};

#[derive(Debug, Clone)]
enum Op {
    Set(u8, u8, i64),
    Clear(u8, u8),
    InsertRows(u8, u8),
    DeleteRows(u8, u8),
    InsertCols(u8, u8),
    DeleteCols(u8, u8),
    CheckCell(u8, u8),
    CheckRange(u8, u8, u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<u8>(), 0u8..24, any::<i64>()).prop_map(|(r, c, v)| Op::Set(r % 48, c, v)),
        1 => (any::<u8>(), 0u8..24).prop_map(|(r, c)| Op::Clear(r % 48, c)),
        1 => (0u8..40, 1u8..4).prop_map(|(at, n)| Op::InsertRows(at, n)),
        1 => (0u8..40, 1u8..4).prop_map(|(at, n)| Op::DeleteRows(at, n)),
        1 => (0u8..20, 1u8..3).prop_map(|(at, n)| Op::InsertCols(at, n)),
        1 => (0u8..20, 1u8..3).prop_map(|(at, n)| Op::DeleteCols(at, n)),
        2 => (any::<u8>(), 0u8..24).prop_map(|(r, c)| Op::CheckCell(r % 48, c)),
        1 => (any::<u8>(), 0u8..24, any::<u8>(), 0u8..24)
            .prop_map(|(r1, c1, r2, c2)| Op::CheckRange(r1 % 48, c1, r2 % 48, c2)),
    ]
}

fn run_script(mut hs: HybridSheet, ops: &[Op]) {
    let mut oracle = SparseSheet::new();
    for op in ops {
        match *op {
            Op::Set(r, c, v) => {
                let addr = CellAddr::new(r as u32, c as u32);
                oracle.set_value(addr, v);
                hs.set_cell(addr, Cell::value(v)).unwrap();
            }
            Op::Clear(r, c) => {
                let addr = CellAddr::new(r as u32, c as u32);
                oracle.clear(addr);
                hs.clear_cell(addr).unwrap();
            }
            Op::InsertRows(at, n) => {
                oracle.insert_rows(at as u32, n as u32).unwrap();
                hs.insert_rows(at as u32, n as u32).unwrap();
            }
            Op::DeleteRows(at, n) => {
                oracle.delete_rows(at as u32, n as u32).unwrap();
                hs.delete_rows(at as u32, n as u32).unwrap();
            }
            Op::InsertCols(at, n) => {
                oracle.insert_cols(at as u32, n as u32).unwrap();
                hs.insert_cols(at as u32, n as u32).unwrap();
            }
            Op::DeleteCols(at, n) => {
                oracle.delete_cols(at as u32, n as u32).unwrap();
                hs.delete_cols(at as u32, n as u32).unwrap();
            }
            Op::CheckCell(r, c) => {
                let addr = CellAddr::new(r as u32, c as u32);
                let want = oracle.get(addr).map(|c| c.value.clone());
                let got = hs.get_cell(addr).map(|c| c.value);
                assert_eq!(got, want, "cell {addr}");
            }
            Op::CheckRange(r1, c1, r2, c2) => {
                let rect = Rect::new(r1 as u32, c1 as u32, r2 as u32, c2 as u32);
                let want: Vec<(CellAddr, Cell)> = oracle
                    .iter_rect(rect)
                    .map(|(a, c)| (a, c.clone()))
                    .collect();
                let got = hs.get_cells(rect);
                assert_eq!(got, want, "range {rect}");
            }
        }
    }
    // Final full comparison.
    let want: Vec<(CellAddr, Cell)> = oracle.iter().map(|(a, c)| (a, c.clone())).collect();
    let got = hs.get_cells(Rect::new(0, 0, 4096, 4096));
    assert_eq!(got, want, "final state");
    assert_eq!(hs.filled_count(), oracle.filled_count() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn catchall_rcv_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..120)) {
        run_script(HybridSheet::new(), &ops);
    }

    #[test]
    fn rom_region_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..120)) {
        // Pre-install a ROM region covering the hot area; ops also hit the
        // catch-all outside it.
        let mut hs = HybridSheet::new();
        let rom = Box::new(dataspread::engine::rom::RomTranslator::new(PosMapKind::Hierarchical));
        hs.add_region(Rect::new(0, 0, 19, 11), rom).unwrap();
        run_script(hs, &ops);
    }

    #[test]
    fn com_region_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut hs = HybridSheet::new();
        let com = Box::new(dataspread::engine::com::ComTranslator::new(PosMapKind::Hierarchical));
        hs.add_region(Rect::new(4, 2, 25, 15), com).unwrap();
        run_script(hs, &ops);
    }

    #[test]
    fn as_is_posmap_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..60)) {
        run_script(HybridSheet::with_posmap(PosMapKind::AsIs), &ops);
    }

    #[test]
    fn monotonic_posmap_matches_oracle(ops in prop::collection::vec(op_strategy(), 1..60)) {
        run_script(HybridSheet::with_posmap(PosMapKind::Monotonic), &ops);
    }
}
