//! End-to-end integration: import → formulas → structural edits →
//! linkTable → SQL → optimize, spanning every crate in the workspace.

use dataspread::engine::{OptimizeAlgorithm, SheetEngine};
use dataspread::grid::{CellAddr, CellValue, Rect};
use dataspread::hybrid::{CostModel, OptimizerOptions};
use dataspread::relstore::Datum;

fn a(s: &str) -> CellAddr {
    CellAddr::parse_a1(s).unwrap()
}

#[test]
fn import_formulas_edit_link_sql_optimize() {
    let mut e = SheetEngine::new();

    // 1. Import a small dataset as a bulk ROM region.
    let rows: Vec<Vec<CellValue>> = (0..100)
        .map(|i| {
            vec![
                CellValue::Number(i as f64),
                CellValue::Number((i * 2) as f64),
                CellValue::Text(format!("item-{i}")),
            ]
        })
        .collect();
    let rect = e.import_rows(a("A2"), 3, rows).unwrap();
    assert_eq!(rect, Rect::parse_a1("A2:C101").unwrap());

    // 2. Formulas over the imported data.
    e.update_cell_a1("E1", "=SUM(B2:B101)").unwrap();
    assert_eq!(
        e.value(a("E1")),
        CellValue::Number((0..100).map(|i| i * 2).sum::<i32>() as f64)
    );
    e.update_cell_a1("E2", "=VLOOKUP(42,A2:C101,3)").unwrap();
    assert_eq!(e.value(a("E2")), CellValue::Text("item-42".into()));

    // 3. Structural edit across the region: formulas follow.
    e.insert_rows(0, 3).unwrap();
    assert_eq!(e.value(a("E4")), CellValue::Number(9900.0));
    assert_eq!(
        e.snapshot().get(a("E4")).unwrap().formula.as_deref(),
        Some("SUM(B5:B104)")
    );

    // 4. Build a summary block and link it as a database table.
    e.update_cell_a1("H1", "bucket").unwrap();
    e.update_cell_a1("I1", "count").unwrap();
    for (i, (b, c)) in [("low", 40), ("mid", 35), ("high", 25)].iter().enumerate() {
        e.update_cell(CellAddr::new(1 + i as u32, 7), b).unwrap();
        e.update_cell(CellAddr::new(1 + i as u32, 8), &c.to_string())
            .unwrap();
    }
    e.link_table(Rect::parse_a1("H1:I4").unwrap(), "buckets")
        .unwrap();
    let r = e
        .sql(
            "SELECT bucket FROM buckets WHERE count >= ? ORDER BY count DESC",
            &[Datum::Int(30)],
        )
        .unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(r.rows[0][0], Datum::Text("low".into()));

    // 5. Optimize storage; nothing may be lost, formulas still live.
    let before = e.snapshot();
    let report = e
        .optimize(
            &CostModel::postgres(),
            OptimizeAlgorithm::Agg,
            &OptimizerOptions::default(),
        )
        .unwrap();
    assert!(report.decomposition.table_count() >= 1);
    assert_eq!(e.snapshot(), before);
    e.update_cell_a1("B5", "1000").unwrap();
    assert_eq!(e.value(a("E4")), CellValue::Number(9900.0 - 0.0 + 1000.0));
}

#[test]
fn incremental_optimize_after_edits() {
    let mut e = SheetEngine::new();
    for r in 0..30 {
        for c in 0..4 {
            e.update_cell(CellAddr::new(r, c), &format!("{}", r + c))
                .unwrap();
        }
    }
    e.optimize(
        &CostModel::postgres(),
        OptimizeAlgorithm::Agg,
        &OptimizerOptions::default(),
    )
    .unwrap();
    // Diverge: a new far-away block.
    for r in 100..110 {
        for c in 10..13 {
            e.update_cell(CellAddr::new(r, c), "5").unwrap();
        }
    }
    let before = e.snapshot();
    let report = e
        .optimize(
            &CostModel::postgres(),
            OptimizeAlgorithm::IncrementalAgg { eta: 1.0 },
            &OptimizerOptions::default(),
        )
        .unwrap();
    assert!(report.decomposition.table_count() >= 1);
    assert_eq!(e.snapshot(), before);
}

#[test]
fn dp_optimize_small_sheet() {
    let mut e = SheetEngine::new();
    for r in 0..10 {
        for c in 0..3 {
            e.update_cell(CellAddr::new(r, c), "1").unwrap();
        }
    }
    for r in 0..4 {
        for c in 30..36 {
            e.update_cell(CellAddr::new(r, c), "2").unwrap();
        }
    }
    let before = e.snapshot();
    let report = e
        .optimize(
            &CostModel::ideal(),
            OptimizeAlgorithm::Dp,
            &OptimizerOptions::default(),
        )
        .unwrap();
    assert!(
        report.decomposition.table_count() >= 2,
        "two separated blocks"
    );
    assert_eq!(e.snapshot(), before);
}

#[test]
fn scrolling_large_import() {
    use dataspread::corpus::vcf::vcf_rows;
    let mut e = SheetEngine::new();
    e.import_rows(a("A1"), 11, vcf_rows(50_000, 2, 3)).unwrap();
    // Scroll to several windows; all fetches return content.
    for start in [0u32, 20_000, 49_950] {
        let cells = e.get_cells(Rect::new(start, 0, start + 49, 10));
        assert!(cells.len() >= 50 * 9, "window at {start} is populated");
    }
    // Middle insert + fetch still consistent.
    e.storage_mut().insert_rows(25_000, 1).unwrap();
    assert_eq!(e.value(CellAddr::new(25_000, 0)), CellValue::Empty);
    let below = e.get_cells(Rect::new(25_001, 0, 25_001, 10));
    assert!(!below.is_empty(), "shifted rows remain readable");
}
