//! Smoke tests for the umbrella crate's public re-exports: every workspace
//! crate must be reachable through `dataspread::...` paths, and the README
//! quickstart (`update_cell_a1` + `=SUM(...)`) must work end to end.

use dataspread::engine::SheetEngine;
use dataspread::grid::{CellAddr, CellValue};

#[test]
fn quickstart_sum_evaluates_through_reexports() {
    let mut sheet = SheetEngine::new();
    sheet.update_cell_a1("A1", "10").unwrap();
    sheet.update_cell_a1("A2", "32").unwrap();
    sheet.update_cell_a1("A3", "=SUM(A1:A2)").unwrap();
    assert_eq!(
        sheet.value(CellAddr::parse_a1("A3").unwrap()),
        CellValue::Number(42.0)
    );

    // Edits propagate through the dependency graph.
    sheet.update_cell_a1("A1", "8").unwrap();
    assert_eq!(
        sheet.value(CellAddr::parse_a1("A3").unwrap()),
        CellValue::Number(40.0)
    );
}

#[test]
fn every_reexported_crate_is_reachable() {
    // grid
    let addr = dataspread::grid::CellAddr::parse_a1("B2").unwrap();
    assert_eq!((addr.row, addr.col), (1, 1));

    // posmap
    use dataspread::posmap::PositionalMap;
    let mut pm = dataspread::posmap::HierarchicalPosMap::new();
    pm.push(7u32);
    pm.insert_at(0, 3);
    assert_eq!(pm.get(1), Some(&7));

    // relstore
    let mut heap = dataspread::relstore::HeapFile::new();
    let tid = heap.insert(b"row").unwrap();
    assert_eq!(heap.get(tid), Some(&b"row"[..]));

    // hybrid
    let cm = dataspread::hybrid::CostModel::postgres();
    assert!(cm.rom(10, 10) > 0.0);

    // formula
    let expr = dataspread::formula::parse("1+2*3").unwrap();
    assert_eq!(expr.to_string().replace(' ', ""), "(1+(2*3))");

    // rel + analysis + corpus: generate a sheet, analyze it.
    let sheets = dataspread::corpus::generate_corpus(
        dataspread::corpus::CorpusName::Internet,
        1,
        20_180_416,
    );
    let analysis = dataspread::analysis::analyze_sheet(
        &sheets[0],
        &dataspread::analysis::TabularConfig::default(),
    );
    assert_eq!(analysis.filled_cells, sheets[0].filled_count());

    // engine is exercised by the quickstart test above; rel via its Datum.
    let d = dataspread::relstore::Datum::Int(5);
    assert_eq!(d.as_i64(), Some(5));

    // workspace: the concurrent multi-sheet service facade.
    let ws = dataspread::workspace::Workspace::in_memory();
    let session = ws.session();
    session.open_sheet("smoke").unwrap();
    session
        .apply_edit(
            "smoke",
            dataspread::workspace::Edit::Set {
                row: 0,
                col: 0,
                input: "42".into(),
            },
        )
        .unwrap();
    assert_eq!(
        session
            .value("smoke", dataspread::grid::CellAddr::new(0, 0))
            .unwrap(),
        dataspread::grid::CellValue::Number(42.0)
    );

    // proto + server + client: the same session API over TCP.
    let handle = dataspread::server::serve(ws, "127.0.0.1:0").unwrap();
    let client = dataspread::client::Client::connect(handle.local_addr()).unwrap();
    let remote = client.session();
    let window = remote
        .fetch_window("smoke", dataspread::grid::Rect::new(0, 0, 3, 3))
        .unwrap();
    assert_eq!(window.filled_count(), 1);
    assert_eq!(
        window
            .cell_at(dataspread::grid::CellAddr::new(0, 0))
            .unwrap()
            .value,
        dataspread::grid::CellValue::Number(42.0)
    );
    let err = remote.open_sheet("bad/name").unwrap_err();
    assert_eq!(
        err.code(),
        dataspread::proto::codes::BAD_SHEET_NAME,
        "error codes round-trip the wire"
    );
    handle.shutdown();
}
