//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the Criterion API the workspace benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `criterion_group!` / `criterion_main!`) with a simple median-of-samples
//! wall-clock harness. No statistical analysis, plots, or reports — just
//! enough to keep the benches compiling, runnable, and honest about rough
//! relative timings until the real Criterion can be pulled from crates.io.

use std::fmt::Display;
use std::hint::black_box as hint_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint_black_box(x)
}

/// Top-level harness handle passed to every benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one("", id, sample_size, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// A `function_name/parameter` benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else if self.parameter.is_empty() {
            write!(f, "{}", self.function)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to each benchmark closure; `iter` times the hot loop.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and pick an iteration count targeting ~2ms per sample so
        // sub-microsecond routines still get a measurable batch.
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(20));
        let target = Duration::from_millis(2);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        self.iters_per_sample = iters;

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> Option<f64> {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return None;
        }
        let mut ns: Vec<u128> = self.samples.iter().map(Duration::as_nanos).collect();
        ns.sort_unstable();
        let median = ns[ns.len() / 2];
        Some(median as f64 / self.iters_per_sample as f64)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_count: sample_size.max(2),
        iters_per_sample: 0,
    };
    f(&mut bencher);
    match bencher.median_ns_per_iter() {
        Some(ns) => println!("bench {label:<40} {:>12.1} ns/iter (median)", ns),
        None => println!("bench {label:<40} (no samples: Bencher::iter never called)"),
    }
}

/// Mirrors `criterion::criterion_group!`: bundles benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: generates `main` running the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut ran = 0;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran += 1;
        });
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(10).to_string(), "10");
    }
}
