//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::{Mutex, RwLock}` behind `parking_lot`'s non-poisoning
//! API (`lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s). Poisoned locks are recovered transparently, matching
//! `parking_lot`'s behaviour of not propagating panics through locks.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutex with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
