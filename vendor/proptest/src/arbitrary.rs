//! `any::<T>()` — strategies derived from a type's full value domain.

use std::marker::PhantomData;

use rand::RngCore;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<A>(PhantomData<A>);

pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn new_value(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
