//! Collection strategies (`prop::collection::vec`).

use rand::Rng as _;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Accepted size arguments for [`vec`]: `n`, `lo..hi`, or `lo..=hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range {r:?}");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range {r:?}");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// `Vec` strategy: a random length in `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
