//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so the workspace vendors a
//! minimal property-testing framework that is source-compatible with the
//! subset of proptest the test suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, and `boxed`,
//! * strategies for ranges, tuples, `any::<T>()`, [`strategy::Just`],
//!   simple `"[class]{lo,hi}"` string regexes, and
//!   `prop::collection::vec`,
//! * weighted and unweighted [`prop_oneof!`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! * `prop::sample::Index`.
//!
//! Inputs are generated from a deterministic per-test RNG. There is **no
//! shrinking**: a failing case reports the panic/assertion message and the
//! case number only. That trades debugging convenience for zero
//! dependencies; swap in the real proptest when network access exists.

pub mod arbitrary;
pub mod collection;
mod macros;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors the `prop` module alias exposed by proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tree() -> impl Strategy<Value = usize> {
        let leaf = Just(1usize);
        leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in -5i64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vec_respects_size(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn oneof_weighted_only_picks_arms(x in prop_oneof![3 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(x == 1 || x == 2, "unexpected arm value {}", x);
        }

        #[test]
        fn recursive_strategies_terminate(n in tree()) {
            prop_assert!(n >= 1);
        }

        #[test]
        fn string_regex_class(s in "[a-z ]{0,8}") {
            prop_assert!(s.len() <= 8);
            prop_assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
        }

        #[test]
        fn index_selects_valid_element(idx in any::<prop::sample::Index>()) {
            let items = [10, 20, 30];
            prop_assert!(items.contains(idx.get(&items)));
        }

        #[test]
        fn early_ok_return_is_allowed(x in 0u8..10) {
            if x > 100 {
                return Ok(());
            }
            prop_assert!(x < 10);
        }
    }
}
