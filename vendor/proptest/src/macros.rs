//! The user-facing macros: `proptest!`, `prop_oneof!`, `prop_assert*!`.

/// Mirrors `proptest::proptest!`: each `fn name(arg in strategy, ...)` body
/// becomes a `#[test]` that runs the body over `config.cases` random inputs.
/// The body runs in a closure returning `Result<(), TestCaseError>`, so
/// `return Ok(())` works for early exits and `prop_assert*` report failures
/// without panicking mid-body.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(stringify!($name), &config, |prop_rng| {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), prop_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Mirrors `proptest::prop_oneof!`: uniform (`a, b, c`) or weighted
/// (`2 => a, 1 => b`) choice between same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Mirrors `proptest::prop_assert!`: on failure, returns a
/// `TestCaseError` from the enclosing generated test-case closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`)",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right` (left: `{:?}`, right: `{:?}`): {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right` (both: `{:?}`)",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right` (both: `{:?}`): {}",
            left,
            format!($($fmt)+)
        );
    }};
}
