//! Sampling helpers (`prop::sample::Index`).

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;
use rand::RngCore;

/// An index into a slice whose length is unknown at generation time,
/// mirroring `proptest::sample::Index`. The raw draw is reduced modulo the
/// slice length at use time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: usize,
}

impl Index {
    /// Resolve against a concrete slice. Panics on an empty slice, like the
    /// real proptest.
    pub fn get<'a, T>(&self, slice: &'a [T]) -> &'a T {
        &slice[self.index(slice.len())]
    }

    /// Resolve against a collection of `len` elements. Panics if `len == 0`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot select an index from an empty collection");
        self.raw % len
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        Index {
            raw: rng.next_u64() as usize,
        }
    }
}
