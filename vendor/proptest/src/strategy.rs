//! The [`Strategy`] trait and core combinators.

use std::rc::Rc;

use rand::{Rng as _, SampleRange, SampleUniform};

use crate::test_runner::TestRng;

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is just a deterministic-RNG-driven generator.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generate: Rc::new(move |rng| self.new_value(rng)),
        }
    }

    /// Build a recursive strategy: `recurse` receives a strategy for the
    /// "inner" levels and wraps it one composite level deeper. Recursion
    /// depth is bounded by `depth`; the extra proptest tuning knobs
    /// (desired size, expected branch size) are accepted but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            // Mix leaves back in at every level so generated values span
            // the whole range of depths, not just the maximum.
            current = Union::new_weighted(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }
}

/// Type-erased, cheaply clonable strategy (the `prop_recursive` currency).
pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Rc::clone(&self.generate),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Weighted choice between strategies — what `prop_oneof!` builds.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Union::new_weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut draw = rng.gen_range(0..self.total_weight);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if draw < weight {
                return strategy.new_value(rng);
            }
            draw -= weight;
        }
        unreachable!("draw below total weight always lands in an arm")
    }
}

impl<T> Strategy for std::ops::Range<T>
where
    T: SampleUniform + Clone + PartialOrd,
    std::ops::Range<T>: SampleRange<T>,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.clone().sample_single(rng)
    }
}

impl<T> Strategy for std::ops::RangeInclusive<T>
where
    T: SampleUniform + Clone + PartialOrd,
    std::ops::RangeInclusive<T>: SampleRange<T>,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.clone().sample_single(rng)
    }
}

/// `"[a-z ]{0,8}"`-style patterns generate matching strings.
impl Strategy for &'static str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A.0);
impl_strategy_for_tuple!(A.0, B.1);
impl_strategy_for_tuple!(A.0, B.1, C.2);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_strategy_for_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
