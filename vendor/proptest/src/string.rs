//! Tiny regex-subset string generator backing `impl Strategy for &str`.
//!
//! Supports concatenations of atoms, where an atom is a literal character
//! or a `[...]` character class (literal chars and `a-z` ranges), each with
//! an optional `{n}` / `{lo,hi}` quantifier — enough for patterns like
//! `"[a-z ]{0,8}"`. Anything fancier panics with a clear message so the
//! gap is obvious if a future test needs more.

use rand::Rng as _;

use crate::test_runner::TestRng;

#[derive(Debug)]
struct Atom {
    choices: Vec<char>,
    min: u32,
    max: u32,
}

pub(crate) fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let count = rng.gen_range(atom.min..=atom.max);
        for _ in 0..count {
            let pick = rng.gen_range(0..atom.choices.len());
            out.push(atom.choices[pick]);
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => {
                let mut class = Vec::new();
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some(lo) => {
                            if chars.peek() == Some(&'-') {
                                chars.next();
                                let hi = chars.next().unwrap_or_else(|| {
                                    panic!("unterminated range in string pattern {pattern:?}")
                                });
                                assert!(
                                    hi != ']' && lo <= hi,
                                    "bad character range in string pattern {pattern:?}"
                                );
                                class.extend(lo..=hi);
                            } else {
                                class.push(lo);
                            }
                        }
                        None => panic!("unterminated character class in string pattern {pattern:?}"),
                    }
                }
                assert!(
                    !class.is_empty(),
                    "empty character class in string pattern {pattern:?}"
                );
                class
            }
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in string pattern {pattern:?}"));
                vec![escaped]
            }
            '(' | ')' | '|' | '*' | '+' | '?' | '.' | '^' | '$' => panic!(
                "string pattern {pattern:?} uses unsupported regex syntax {c:?}; \
                 the vendored proptest stub only handles literal/class atoms with {{lo,hi}} quantifiers"
            ),
            literal => vec![literal],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                match chars.next() {
                    Some('}') => break,
                    Some(d) => spec.push(d),
                    None => panic!("unterminated quantifier in string pattern {pattern:?}"),
                }
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().unwrap_or_else(|_| {
                        panic!("bad quantifier {{{spec}}} in string pattern {pattern:?}")
                    }),
                    hi.trim().parse().unwrap_or_else(|_| {
                        panic!("bad quantifier {{{spec}}} in string pattern {pattern:?}")
                    }),
                ),
                None => {
                    let n = spec.trim().parse().unwrap_or_else(|_| {
                        panic!("bad quantifier {{{spec}}} in string pattern {pattern:?}")
                    });
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(
            min <= max,
            "inverted quantifier {{{min},{max}}} in string pattern {pattern:?}"
        );
        atoms.push(Atom { choices, min, max });
    }
    atoms
}
