//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal, API-compatible subset of `rand` 0.8: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods the
//! workspace actually uses (`gen`, `gen_range`, `gen_bool`). The generator
//! is a small splitmix64/xoshiro-style PRNG — deterministic, seedable, and
//! statistically fine for synthetic-corpus generation and tests, but **not**
//! cryptographically secure.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic PRNG standing in for `rand::rngs::StdRng`.
    ///
    /// xoshiro256++ seeded via splitmix64, the same construction the
    /// reference implementation recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "cannot sample from empty range {lo}..{hi}");
                let draw = (rng.next_u64() as u128 % span as u128) as i128;
                (lo_w + draw) as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample from empty range {lo}..{hi}");
                let unit = (rng.next_u64() >> 11) as $ty / (1u64 << 53) as $ty;
                lo + (hi - lo) * unit
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution subset).
pub trait Standard: Sized {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-30i64..60);
            assert!((-30..60).contains(&x));
            let y = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
